"""Stdlib client for the serve HTTP protocol (used by ``repro query``).

Thin urllib wrapper; raises :class:`ServiceError` with the server's
``error`` field for 4xx/5xx responses so callers see one exception
type for "the service said no".

Transient trouble is retried the way the PR 1 measurement guard
retries transient faults: a bounded per-call budget, exponential
backoff with a cap, and a clean split between *transient* errors
(connection refused/reset, HTTP 503 load sheds -- worth another try)
and *deterministic* ones (400s, 500s -- retrying would just repeat
them).  Two serve-specific twists:

- A 503 carrying ``Retry-After`` is the server telling the client
  when capacity returns; the hint overrides the backoff schedule
  (still capped at ``backoff_max_s``).
- Jitter is deterministic -- a BLAKE2b hash of ``(path, attempt)``
  scales each delay -- so a retrying client is reproducible under
  test while a fleet of clients still decorrelates (different paths
  and attempt counts hash apart).  No global RNG is consulted.
"""

from __future__ import annotations

import hashlib
import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

from ..errors import ServiceError


@dataclass(frozen=True)
class ClientRetryPolicy:
    """Bounded-retry schedule for transient request failures.

    ``max_retries=0`` disables retrying entirely (one attempt).
    """

    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter: float = 0.25  # +/- fraction applied to each delay


def _jitter_scale(path: str, attempt: int, jitter: float) -> float:
    """Deterministic delay multiplier in ``[1 - jitter, 1 + jitter]``."""
    if jitter <= 0:
        return 1.0
    h = hashlib.blake2b(f"{path}:{attempt}".encode(), digest_size=2)
    unit = int(h.hexdigest(), 16) / 0xFFFF  # [0, 1]
    return 1.0 + jitter * (2.0 * unit - 1.0)


class ServeClient:
    """Talk to a running serve endpoint.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running ``repro serve``.
    timeout_s:
        Per-request socket timeout.
    retry:
        :class:`ClientRetryPolicy`; the default retries connection
        errors and 503 sheds a few times with backoff.
    sleep / opener:
        Injectable for tests (defaults: ``time.sleep``,
        ``urllib.request.urlopen``).
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 10.0,
        retry: "ClientRetryPolicy | None" = None,
        sleep=time.sleep,
        opener=urllib.request.urlopen,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.retry = retry or ClientRetryPolicy()
        self.sleep = sleep
        self.opener = opener
        self.retries_used = 0  # total across the client's lifetime

    # ------------------------------------------------------------------
    def _attempt(self, path: str, payload: "dict | None") -> dict:
        """One HTTP round trip; transient trouble raises ``_Transient``."""
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers)
        try:
            with self.opener(req, timeout=self.timeout_s) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as e:
            try:
                detail = json.loads(e.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - body may be anything
                detail = ""
            message = f"{path} failed with HTTP {e.code}: {detail or e.reason}"
            if e.code == 503:
                raise _Transient(
                    message, retry_after_s=_retry_after(e.headers)
                ) from None
            raise ServiceError(message) from None
        except urllib.error.URLError as e:
            # Connection refused/reset, DNS hiccups: the request never
            # reached a handler, so a retry cannot double-apply it.
            raise _Transient(f"cannot reach {url}: {e.reason}") from None

    def _request(self, path: str, payload: "dict | None" = None) -> dict:
        policy = self.retry
        delay = policy.backoff_base_s
        for attempt in range(policy.max_retries + 1):
            try:
                return self._attempt(path, payload)
            except _Transient as e:
                if attempt >= policy.max_retries:
                    raise ServiceError(
                        f"{e} (gave up after {attempt + 1} attempts)"
                    ) from None
                wait = delay * _jitter_scale(path, attempt, policy.jitter)
                if e.retry_after_s is not None:
                    wait = e.retry_after_s
                self.sleep(min(wait, policy.backoff_max_s))
                self.retries_used += 1
                delay = min(
                    delay * policy.backoff_factor, policy.backoff_max_s
                )
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._request("/healthz")

    def stats(self) -> dict:
        return self._request("/stats")

    def select(self, stencil, gpu: str,
               budget_ms: "float | None" = None) -> dict:
        """One selection; *stencil* is a name or an offsets document."""
        doc = {"stencil": stencil, "gpu": gpu}
        if budget_ms is not None:
            doc["budget_ms"] = budget_ms
        return self._request("/v1/select", doc)

    def select_batch(self, requests: "list[dict]") -> "list[dict]":
        return self._request("/v1/select", {"requests": requests})["results"]

    def predict(self, stencil, oc: str, gpu: str,
                setting: "dict | None" = None,
                budget_ms: "float | None" = None) -> float:
        doc = {"stencil": stencil, "oc": oc, "gpu": gpu}
        if setting:
            doc["setting"] = setting
        if budget_ms is not None:
            doc["budget_ms"] = budget_ms
        return float(self._request("/v1/predict", doc)["time_ms"])

    def predict_batch(self, requests: "list[dict]") -> "list[float]":
        out = self._request("/v1/predict", {"requests": requests})["results"]
        return [float(r["time_ms"]) for r in out]


class _Transient(Exception):
    """A failure worth retrying (connection error or 503 shed)."""

    def __init__(self, message: str, retry_after_s: "float | None" = None):
        super().__init__(message)
        self.retry_after_s = retry_after_s


def _retry_after(headers) -> "float | None":
    raw = headers.get("Retry-After") if headers is not None else None
    if raw is None:
        return None
    try:
        return max(0.0, float(raw))
    except ValueError:
        return None
