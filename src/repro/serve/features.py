"""Content-keyed feature cache for the prediction service.

Same design as :class:`repro.engine.cache.CachingBackend`: results are
pure functions of content identity, so replays are free.  Here the
cached computation is the per-stencil representation work -- the Table
II feature vector and the binary assignment tensor -- which the service
would otherwise redo on every request for popular stencils.

Thread-safe: HTTP handler threads and the micro-batcher all feed one
cache.  The lock is held only around dict bookkeeping; the NumPy work
for a miss happens outside it.
"""

from __future__ import annotations

import threading

import numpy as np

from ..config import MAX_ORDER
from ..stencil.features import extract_features
from ..stencil.stencil import Stencil
from ..stencil.tensorize import assign_tensor


class FeatureCache:
    """Memoized stencil -> (features, tensor) mapping.

    Entries are keyed by :meth:`Stencil.cache_key` (content identity --
    equal stencils behind different objects share one entry).  Arrays
    are stored read-only so cached rows can be handed to many batches
    without defensive copies.
    """

    def __init__(self, max_order: int = MAX_ORDER):
        self.max_order = int(max_order)
        self._entries: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def lookup(self, stencil: Stencil) -> tuple[np.ndarray, np.ndarray]:
        """``(features, tensor)`` for one stencil, cached by content."""
        key = stencil.cache_key()
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                return entry
        feats = extract_features(stencil, self.max_order)
        tensor = assign_tensor(stencil, self.max_order)
        feats.setflags(write=False)
        tensor.setflags(write=False)
        fresh = (feats, tensor)
        with self._lock:
            # A racing thread may have filled the slot; keep the first
            # entry so every caller sees one canonical array pair.
            entry = self._entries.setdefault(key, fresh)
            if entry is fresh:
                self.misses += 1
            else:
                self.hits += 1
        return entry

    def features(self, stencils: "list[Stencil]") -> np.ndarray:
        """Stacked Table II feature matrix ``(n, n_features)``."""
        return np.stack([self.lookup(s)[0] for s in stencils])

    def tensors(self, stencils: "list[Stencil]") -> np.ndarray:
        """Stacked assignment tensors ``(n, (2R+1)^d)``."""
        return np.stack([self.lookup(s)[1] for s in stencils])

    # ------------------------------------------------------------------
    def info(self) -> dict:
        """Hit/miss accounting: ``{"hits", "misses", "size", "hit_rate"}``."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "hit_rate": (self.hits / total) if total else 0.0,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
