#!/usr/bin/env python
"""Tour of the CUDA code generator across optimization combinations.

Shows how each optimization reshapes the emitted kernel for the same
stencil: streaming plane loops, register queues, merging loops, prefetch
double buffering, retimed accumulation and temporal-blocking step loops --
together with the analytical kernel profile the simulator times.

Run:  python examples/codegen_tour.py
"""

from repro.codegen import generate_cuda
from repro.gpu import GPUSimulator
from repro.optimizations import OC, ParamSetting, build_profile
from repro.stencil import get

STENCIL = get("star3d2r")
VARIANTS = [
    ("naive", ParamSetting()),
    ("naive + smem tile", ParamSetting(use_smem=1)),
    ("ST", ParamSetting(stream_dim=3, stream_tiles=4, use_smem=1)),
    ("ST_RT_PR", ParamSetting(stream_dim=3, stream_tiles=4, use_smem=1)),
    ("ST_CM", ParamSetting(stream_dim=3, merge_factor=2, merge_dim=2, use_smem=1)),
    ("ST_TB", ParamSetting(stream_dim=3, temporal_steps=2, use_smem=1, block_y=16)),
]


def main() -> None:
    sim = GPUSimulator("V100", sigma=0)
    print(f"== CUDA codegen tour: {STENCIL.name} "
          f"(order {STENCIL.order}, {STENCIL.nnz} points) ==\n")
    for label, setting in VARIANTS:
        oc = OC.parse(label.split(" ")[0]) if not label.startswith("naive") else OC.parse("naive")
        src = generate_cuda(STENCIL, oc, setting)
        profile = build_profile(STENCIL, oc, setting)
        t = sim.time(STENCIL, oc, setting)
        interesting = [
            l.strip()
            for l in src.splitlines()
            if any(k in l for k in ("__global__", "__shared__", "for (int", "prefetch", "partial"))
        ][:6]
        print(f"-- {label} --")
        print(f"   time {t:8.3f} ms | regs {profile.regs_per_thread:3d} | "
              f"smem {profile.smem_per_block // 1024:3d} KB | "
              f"blocks {profile.n_blocks}")
        for line in interesting:
            print(f"   | {line}")
        print()


if __name__ == "__main__":
    main()
