#!/usr/bin/env python
"""Quickstart: predict the best optimization combination for a stencil.

Builds a small profiled dataset of random 2-D stencils on the simulated
V100, trains the GBDT selector, and uses it to pick and tune an
optimization combination for the classic 5-point Jacobi stencil --
comparing the result against the exhaustive oracle.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import StencilMART, stencil
from repro.baselines import OracleBaseline
from repro.codegen import generate_cuda

GPU = "V100"


def main() -> None:
    t0 = time.time()
    print("== StencilMART quickstart ==")

    # 1. Build a profiled dataset (random stencils x all OCs on the GPU).
    mart = StencilMART(ndim=2, gpus=(GPU,), n_settings=6, seed=7)
    mart.build_dataset(n_stencils=40)
    print(f"dataset: {len(mart.campaign.stencils)} stencils, "
          f"{len(mart.campaign.measurements(GPU))} measurements "
          f"({time.time() - t0:.1f}s)")
    print("merged OC classes:",
          {i: rep for i, rep in enumerate(mart.grouping.representatives)})

    # 2. Train the OC selector and check its cross-validated accuracy.
    result = mart.evaluate_selector("gbdt", GPU, n_folds=3)
    print(f"GBDT selector accuracy ({GPU}): {result.accuracy:.2%}")
    mart.fit_selector("gbdt", GPU)

    # 3. Predict and tune the classic 5-point Jacobi stencil.
    target = stencil.get("star2d1r")
    oc, setting, t_ms = mart.tune(target, GPU)
    print(f"\n{target.name}: predicted OC = {oc.name}")
    print(f"tuned setting = {setting!r}")
    print(f"simulated time = {t_ms:.3f} ms/step")

    # 4. Compare against the exhaustive oracle at the same budget.
    oracle_oc, _, oracle_t = OracleBaseline(GPU, 6, 7).tune(target)
    print(f"oracle: {oracle_oc.name} at {oracle_t:.3f} ms/step "
          f"(prediction is within {t_ms / oracle_t:.2f}x)")

    # 5. Emit the CUDA kernel a real harness would compile.
    src = generate_cuda(target, oc, setting)
    kernel_line = next(l for l in src.splitlines() if "__global__" in l)
    print(f"\ngenerated CUDA kernel ({len(src.splitlines())} lines):")
    print(" ", kernel_line)

    # 6. Verify the stencil semantics with the NumPy reference.
    grid = np.random.default_rng(0).random((64, 64))
    out = target.apply(grid)
    print(f"reference sweep on 64x64 grid: mean {out.mean():.4f}")
    print(f"\ndone in {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
