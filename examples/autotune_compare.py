#!/usr/bin/env python
"""Compare StencilMART's predicted-OC tuning against Artemis and AN5D.

For each named benchmark stencil, every method gets the same per-OC random
search budget; StencilMART spends it only on the OC its classifier
predicts, Artemis explores high-impact skeletons first, AN5D tunes its
fixed streaming + temporal-blocking strategy (paper Figs. 10-11).

Run:  python examples/autotune_compare.py
"""

import time

import numpy as np

from repro.baselines import AN5DBaseline, ArtemisBaseline, OracleBaseline
from repro.core import StencilMART
from repro.stencil import benchmark_stencils

GPU = "V100"
BUDGET = 6
SEED = 21


def main() -> None:
    t0 = time.time()
    print(f"== Tuner comparison on {GPU} (budget {BUDGET} settings/OC) ==")

    mart = StencilMART(ndim=2, gpus=(GPU,), n_settings=BUDGET, seed=SEED)
    mart.build_dataset(n_stencils=40)
    mart.fit_selector("gbdt", GPU)

    artemis = ArtemisBaseline(GPU, BUDGET, SEED)
    an5d = AN5DBaseline(GPU, BUDGET, SEED)
    oracle = OracleBaseline(GPU, BUDGET, SEED)

    rows = []
    for s in benchmark_stencils(2):
        oc, _, t_mart = mart.tune(s, GPU)
        _, _, t_art = artemis.tune(s)
        _, _, t_an5d = an5d.tune(s)
        _, _, t_best = oracle.tune(s)
        rows.append((s.name, oc.name, t_mart, t_art, t_an5d, t_best))

    print(f"\n{'stencil':12s} {'predicted OC':18s} {'mart':>8s} {'artemis':>8s} "
          f"{'an5d':>8s} {'oracle':>8s} {'vs.art':>7s} {'vs.an5d':>7s}")
    sp_art, sp_an5d = [], []
    for name, oc, tm, ta, tn, tb in rows:
        sp_art.append(ta / tm)
        sp_an5d.append(tn / tm)
        print(f"{name:12s} {oc:18s} {tm:8.3f} {ta:8.3f} {tn:8.3f} {tb:8.3f} "
              f"{ta / tm:6.2f}x {tn / tm:6.2f}x")
    print(f"\ngeometric-mean speedup over Artemis: "
          f"{np.exp(np.mean(np.log(sp_art))):.2f}x")
    print(f"geometric-mean speedup over AN5D:    "
          f"{np.exp(np.mean(np.log(sp_an5d))):.2f}x")
    print(f"done in {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
