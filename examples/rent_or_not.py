#!/usr/bin/env python
"""Case study: to rent or not to rent a cloud GPU (paper Section V-D).

Trains the cross-architecture time predictor on measurements from all four
GPUs, then -- for a batch of fresh stencil instances -- asks which cloud
GPU is (a) fastest and (b) most cost-efficient, and scores the
recommendations against simulated ground truth.

Run:  python examples/rent_or_not.py
"""

import time

from repro.core import RentalAdvisor, StencilMART, build_cross_gpu_instances
from repro.gpu import GPU_ORDER, GPUS, RENTAL_GPUS
from repro.stencil import generate_population


def main() -> None:
    t0 = time.time()
    print("== Rent or not: cloud GPU selection ==")
    for name in GPU_ORDER:
        print(" ", GPUS[name].describe())

    # Train the regressor on profiled instances from every GPU.
    mart = StencilMART(ndim=3, gpus=GPU_ORDER, n_settings=4, seed=13)
    mart.build_dataset(n_stencils=16)
    mart.fit_predictor("gbr", max_rows=8000, n_rounds=80)
    print(f"\npredictor trained ({time.time() - t0:.1f}s)")

    # Fresh stencils the model has never seen.
    fresh = generate_population(3, 10, seed=999)
    instances = build_cross_gpu_instances(fresh, GPU_ORDER, n_per_stencil=4, seed=5)
    advisor = RentalAdvisor(mart, method="gbr")

    # (a) pure performance
    perf = advisor.evaluate(instances, GPU_ORDER)
    print("\n-- pure performance --")
    for g in GPU_ORDER:
        print(f"  {g:7s} wins {perf.shares[g]:6.1%} of instances "
              f"(prediction accuracy {perf.accuracies[g]:.1%})")
    print(f"  overall best-GPU accuracy: {perf.overall_accuracy:.1%}")

    # (b) cost efficiency (2080Ti is not rentable)
    cost = advisor.evaluate(instances, RENTAL_GPUS, by_cost=True)
    print("\n-- cost efficiency (rental GPUs only) --")
    for g in RENTAL_GPUS:
        rate = GPUS[g].rental_per_hour
        print(f"  {g:7s} (${rate:.2f}/hr) wins {cost.shares[g]:6.1%} "
              f"(prediction accuracy {cost.accuracies[g]:.1%})")
    print(f"  overall cost-efficiency accuracy: {cost.overall_accuracy:.1%}")

    # A concrete recommendation for one instance.
    inst = instances[0]
    fastest = advisor.recommend_fastest(inst, GPU_ORDER)
    cheapest = advisor.recommend_cheapest(inst)
    print(f"\nexample instance ({inst.stencil.name}, OC {inst.oc}):")
    print(f"  predicted fastest GPU: {fastest}; most cost-efficient: {cheapest}")
    print(f"\ndone in {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
