"""Engine throughput recorder (developer / CI tool).

Measures points/second through every backend kind on the representative
campaign slice (see ``repro.engine.bench``), sweeps worker counts for
the parallel backend and the sharded campaign runner, and writes the
results as JSON -- ``BENCH_engine.json`` and ``BENCH_parallel.json`` at
the repo root by convention, so the perf trajectory of the hot path is
machine-readable across PRs.

Run: python tools/bench_engine.py [--quick] [--gpu NAME] [-o PATH]
         [--parallel-output PATH] [--skip-parallel] [--context CTX]
"""

import argparse
import json
import sys

from repro.engine.bench import run_parallel_bench, run_throughput_bench


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="small workload for CI smoke runs (no speedup guarantee)",
    )
    ap.add_argument("--gpu", default="V100", help="GPU spec to simulate")
    ap.add_argument(
        "-o",
        "--output",
        default="BENCH_engine.json",
        help="where to write the single-process JSON document",
    )
    ap.add_argument(
        "--parallel-output",
        default="BENCH_parallel.json",
        help="where to write the worker-sweep JSON document",
    )
    ap.add_argument(
        "--skip-parallel",
        action="store_true",
        help="only run the single-process backend bench",
    )
    ap.add_argument(
        "--context",
        default="fork" if sys.platform.startswith("linux") else "spawn",
        choices=("fork", "spawn"),
        help="multiprocessing start method for the worker sweep",
    )
    args = ap.parse_args(argv)

    doc = run_throughput_bench(quick=args.quick, gpu=args.gpu)
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")

    print(f"engine throughput ({doc['gpu']}, {doc['n_points']} points)")
    for kind, row in doc["backends"].items():
        print(
            f"  {kind:8s} {row['points_per_sec']:12,.0f} points/sec "
            f"({row['speedup_vs_scalar']:.2f}x scalar)"
        )
    replay = doc["cached_replay"]
    print(
        f"  {'replay':8s} {replay['points_per_sec']:12,.0f} points/sec "
        f"({replay['speedup_vs_scalar']:.2f}x scalar)"
    )
    print(f"wrote {args.output}")
    if args.skip_parallel:
        return 0

    par = run_parallel_bench(
        quick=args.quick, gpu=args.gpu, context=args.context
    )
    with open(args.parallel_output, "w") as f:
        json.dump(par, f, indent=2)
        f.write("\n")

    print(
        f"worker sweep ({par['gpu']}, {par['cpu_count']} CPUs, "
        f"{par['n_points']} points, {args.context})"
    )
    for transport, sweep in par["backend_sweep"].items():
        for workers, row in sweep.items():
            print(
                f"  backend/{transport:6s} workers={workers}  "
                f"{row['points_per_sec']:12,.0f} points/sec "
                f"({row['speedup_vs_1']:.2f}x workers=1)"
            )
    for workers, ratio in par.get("shm_vs_pickle", {}).items():
        print(f"  shm vs pickle workers={workers}  {ratio:.2f}x")
    for workers, row in par["campaign"]["sweep"].items():
        print(
            f"  campaign workers={workers}  "
            f"{row['measurements_per_sec']:12,.1f} measurements/sec "
            f"({row['speedup_vs_1']:.2f}x workers=1)"
        )
    print(f"wrote {args.parallel_output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
