"""Engine throughput recorder (developer / CI tool).

Measures points/second through every backend kind on the representative
campaign slice (see ``repro.engine.bench``) and writes the result as
JSON -- ``BENCH_engine.json`` at the repo root by convention, so the
perf trajectory of the hot path is machine-readable across PRs.

Run: python tools/bench_engine.py [--quick] [--gpu NAME] [-o PATH]
"""

import argparse
import json
import sys

from repro.engine.bench import run_throughput_bench


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="small workload for CI smoke runs (no speedup guarantee)",
    )
    ap.add_argument("--gpu", default="V100", help="GPU spec to simulate")
    ap.add_argument(
        "-o",
        "--output",
        default="BENCH_engine.json",
        help="where to write the JSON document",
    )
    args = ap.parse_args(argv)

    doc = run_throughput_bench(quick=args.quick, gpu=args.gpu)
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")

    print(f"engine throughput ({doc['gpu']}, {doc['n_points']} points)")
    for kind, row in doc["backends"].items():
        print(
            f"  {kind:8s} {row['points_per_sec']:12,.0f} points/sec "
            f"({row['speedup_vs_scalar']:.2f}x scalar)"
        )
    replay = doc["cached_replay"]
    print(
        f"  {'replay':8s} {replay['points_per_sec']:12,.0f} points/sec "
        f"({replay['speedup_vs_scalar']:.2f}x scalar)"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
