"""Parallel-engine bench + paper-scale campaign driver (developer / CI tool).

Two modes:

- Default: the transport x worker-count sweep from
  ``repro.engine.bench.run_parallel_bench`` (shm vs pickle points/sec,
  sharded campaign throughput), written to ``BENCH_parallel.json`` at
  the repo root by convention.

- ``--paper-scale``: the paper's headline data collection -- 500
  stencils x all OCs x sampled settings per GPU (~65k usable instances
  per GPU after crashes) -- run through the sharded campaign runner
  with the shared-memory transport, then published as a checksummed,
  versioned dataset artifact (``repro.profiling.registry``) that
  ``repro train --campaign <registry dir>`` consumes directly.

Run: python tools/bench_parallel.py [--quick] [--gpu NAME] [-o PATH]
         [--workers N ...] [--context CTX] [--transports T ...]
     python tools/bench_parallel.py --paper-scale [--registry DIR]
         [--name NAME] [--stencils N] [--n-settings K] [--workers N]
"""

import argparse
import json
import os
import sys
import time


def run_sweep(args) -> int:
    from repro.engine.bench import run_parallel_bench

    doc = run_parallel_bench(
        quick=args.quick,
        gpu=args.gpu,
        workers_sweep=tuple(args.workers) if args.workers else (1, 2, 4),
        context=args.context,
        transports=tuple(args.transports),
    )
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")

    print(
        f"worker sweep ({doc['gpu']}, {doc['cpu_count']} CPUs, "
        f"{doc['n_points']} points, {args.context})"
    )
    for transport, sweep in doc["backend_sweep"].items():
        for workers, row in sweep.items():
            print(
                f"  backend/{transport:6s} workers={workers}  "
                f"{row['points_per_sec']:12,.0f} points/sec "
                f"({row['speedup_vs_1']:.2f}x workers=1)"
            )
    for workers, ratio in doc.get("shm_vs_pickle", {}).items():
        print(f"  shm vs pickle workers={workers}  {ratio:.2f}x")
    for workers, row in doc["campaign"]["sweep"].items():
        print(
            f"  campaign workers={workers}  "
            f"{row['measurements_per_sec']:12,.1f} measurements/sec "
            f"({row['speedup_vs_1']:.2f}x workers=1)"
        )
    print(f"wrote {args.output}")
    return 0


def run_paper_scale(args) -> int:
    from repro.engine import shm as shm_transport
    from repro.profiling import CampaignRunner, DatasetRegistry
    from repro.stencil import generate_population

    stencils = generate_population(args.ndim, args.stencils, seed=args.seed)
    runner = CampaignRunner(
        stencils,
        gpus=tuple(args.gpus),
        n_settings=args.n_settings,
        seed=args.seed,
        backend=args.backend,
        workers=args.workers,
        mp_context=args.context,
        transport=args.transport,
    )
    start = time.perf_counter()
    campaign = runner.run()
    elapsed = time.perf_counter() - start

    per_gpu = {g: len(campaign.measurements(g)) for g in campaign.gpus}
    total = sum(per_gpu.values())
    print(
        f"paper-scale campaign: {len(stencils)} stencils x "
        f"{len(campaign.ocs)} OCs x {args.n_settings} settings on "
        f"{len(campaign.gpus)} GPU(s) in {elapsed:.1f}s "
        f"({total / elapsed:,.0f} measurements/sec)"
    )
    for gpu, n in per_gpu.items():
        print(f"  {gpu}: {n} measurements")
    leaked = shm_transport.list_host_segments()
    if leaked:
        print(f"leaked shared-memory segments: {leaked}", file=sys.stderr)
        return 1

    registry = DatasetRegistry(args.registry)
    meta = {
        "generator": "tools/bench_parallel.py --paper-scale",
        "elapsed_s": elapsed,
        "measurements": per_gpu,
        "cpu_count": os.cpu_count() or 1,
        "workers": runner.workers,
        "backend": args.backend,
        "transport": args.transport,
    }
    version = registry.publish(campaign, args.name, meta=meta)
    path = registry.path(args.name, version)
    print(f"published {args.name}@{version} -> {path}")
    print(f"train on it with: repro train --campaign {path.parent}")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="small workload for CI smoke runs (no speedup guarantee)",
    )
    ap.add_argument("--gpu", default="V100", help="GPU spec for the sweep")
    ap.add_argument(
        "-o",
        "--output",
        default="BENCH_parallel.json",
        help="where the sweep JSON document goes",
    )
    ap.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=None,
        help="worker counts to sweep (default 1 2 4); in --paper-scale "
        "mode the first value is the campaign worker count (0 = one "
        "per CPU)",
    )
    ap.add_argument(
        "--transports",
        nargs="+",
        default=["shm", "pickle"],
        choices=("shm", "pickle"),
        help="request transports to sweep",
    )
    ap.add_argument(
        "--context",
        default="fork" if sys.platform.startswith("linux") else "spawn",
        choices=("fork", "spawn"),
        help="multiprocessing start method",
    )
    ap.add_argument(
        "--paper-scale",
        action="store_true",
        help="run the paper-scale campaign and publish it as a versioned "
        "dataset instead of the sweep",
    )
    ap.add_argument(
        "--registry",
        default="datasets",
        help="dataset registry root for --paper-scale publishing",
    )
    ap.add_argument(
        "--name",
        default=None,
        help="dataset name in the registry (default campaign-paper-<ndim>d)",
    )
    ap.add_argument("--ndim", type=int, default=2, choices=(2, 3))
    ap.add_argument(
        "--stencils",
        type=int,
        default=500,
        help="population size for --paper-scale (paper: 500)",
    )
    ap.add_argument(
        "--n-settings",
        type=int,
        default=5,
        help="sampled settings per (stencil, OC) for --paper-scale "
        "(500 x 30 OCs x 5 gives the paper's ~65k usable instances/GPU)",
    )
    ap.add_argument(
        "--gpus",
        nargs="+",
        default=["V100"],
        help="GPUs to profile in --paper-scale mode",
    )
    ap.add_argument(
        "--backend",
        default="vector",
        choices=("scalar", "vector", "cached", "parallel"),
        help="measurement backend for --paper-scale",
    )
    ap.add_argument(
        "--transport",
        default="shm",
        choices=("shm", "pickle"),
        help="parallel-engine transport for --paper-scale",
    )
    ap.add_argument("--seed", type=int, default=2022)
    args = ap.parse_args(argv)

    if args.paper_scale:
        if args.name is None:
            args.name = f"campaign-paper-{args.ndim}d"
        args.workers = (args.workers or [0])[0]
        return run_paper_scale(args)
    return run_sweep(args)


if __name__ == "__main__":
    sys.exit(main())
