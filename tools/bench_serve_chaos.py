"""Serving chaos recorder (developer / CI tool).

Trains small selector/predictor artifacts, runs the scripted chaos
scenario from ``repro.serve.chaos`` (overload burst, corrupt publish,
torn tag, live-traffic hot swap, poisoned-model rollback), and merges
an availability summary into ``BENCH_serve.json`` at the repo root
under the ``"chaos"`` key -- read-modify-write, so the throughput
numbers recorded by ``tools/bench_serve.py`` survive.

Run: python tools/bench_serve_chaos.py [--quick] [--seed N]
         [-o PATH] [--report PATH]
"""

import argparse
import json
import os
import sys
import tempfile

from repro.serve.bench import train_bench_artifacts
from repro.serve.chaos import ChaosConfig, chaos_passed, run_chaos


def chaos_summary(report: dict) -> dict:
    """The durable slice of a chaos report for the JSON trail."""
    return {
        "quick": report["config"]["quick"],
        "seed": report["config"]["seed"],
        "requests": report["totals"]["requests"],
        "availability": report["availability"],
        "availability_excluding_shed": report["availability_excluding_shed"],
        "non_503_errors": report["non_503_errors"],
        "p99_under_overload_ms": report["p99_under_overload_ms"],
        "shed": report["totals"]["shed"],
        "deadline": report["totals"]["deadline"],
        "breaker": report["breaker"],
        "reload": report["reload"],
        "zero_failed_during_swap": report["zero_failed_during_swap"],
    }


def merge_into(path: str, summary: dict) -> None:
    """Add ``summary`` as the ``chaos`` key of an existing bench doc."""
    doc = {}
    if os.path.exists(path):
        with open(path) as f:
            doc = json.load(f)
    doc["chaos"] = summary
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="small workload for CI smoke runs",
    )
    ap.add_argument("--seed", type=int, default=7, help="scenario seed")
    ap.add_argument(
        "-o",
        "--output",
        default="BENCH_serve.json",
        help="bench doc to merge the chaos summary into",
    )
    ap.add_argument(
        "--report",
        default=None,
        help="also write the full chaos report (events, phases) here",
    )
    args = ap.parse_args(argv)

    selector, predictor = train_bench_artifacts(
        quick=args.quick, seed=args.seed
    )
    cfg = ChaosConfig.make(quick=args.quick, seed=args.seed)
    with tempfile.TemporaryDirectory() as workdir:
        report = run_chaos(selector, predictor, cfg, workdir)

    if args.report:
        with open(args.report, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
    summary = chaos_summary(report)
    merge_into(args.output, summary)

    t = report["totals"]
    print(
        f"serve chaos ({t['requests']} requests, seed {cfg.seed}, "
        f"{'quick' if cfg.quick else 'full'})"
    )
    print(
        f"  availability {summary['availability']:.4f} "
        f"(excluding shed {summary['availability_excluding_shed']:.4f}), "
        f"non-503 errors {summary['non_503_errors']}"
    )
    print(
        f"  overload: {t['shed']} shed, {t['deadline']} deadline, "
        f"p99 {summary['p99_under_overload_ms']:.1f} ms"
    )
    b = report["breaker"]
    print(
        f"  breaker: opened={b['opened']} pinned={b['pinned_last_good']} "
        f"recovered={b['recovered']} final={b['final_state']}"
    )
    r = report["reload"]
    print(
        f"  reload: {r['swaps']} swaps, {r['rollbacks']} rollbacks, "
        f"rejected {r['rejected']}"
    )
    print(f"wrote {args.output}")

    problems = chaos_passed(report)
    for p in problems:
        print(f"FAIL: {p}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
