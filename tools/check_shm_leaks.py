"""CI leak check: fail when orphaned shared-memory segments remain.

Run after a test or bench job.  Every segment the parallel engine
creates is named ``repro-shm-<pid>-...`` (see ``repro.engine.shm``), so
any such name still present once the suite's processes have exited is a
leak -- a batch that crashed without unlinking and escaped both the
resource tracker and the engine's own cleanup.  Segments whose creator
pid is dead are reported (and reaped, so reruns start clean); segments
whose creator is still alive are reported without being touched, since
a concurrent job may legitimately own them.

Run: python tools/check_shm_leaks.py
"""

import sys

from repro.engine import shm


def main() -> int:
    before = shm.list_host_segments()
    if not before:
        print("no repro shared-memory segments on the host: clean")
        return 0
    reaped = shm.reap_stale_segments()
    live = shm.list_host_segments()
    for name in reaped:
        print(f"LEAKED (creator dead, reaped): {name}", file=sys.stderr)
    for name in live:
        print(f"present (creator alive): {name}", file=sys.stderr)
    print(
        f"{len(before)} repro segment(s) found after the run "
        f"({len(reaped)} orphaned)",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
