"""Calibration dashboard for the simulator (developer tool).

Prints the four shape targets the motivation figures need:
  1. best-vs-worst OC gap averages (paper Fig. 1: ~9.95x, higher for 3-D)
  2. best-OC label distribution + cross-seed stability (learnability)
  3. anchor/representative diversity after PCC merging
  4. cross-architecture inversions (paper Fig. 4)

Run: python tools/calibrate.py [n_stencils]
"""

import sys
import time
import collections

import numpy as np

from repro.stencil import benchmark_stencils, generate_population
from repro.profiling import merge_ocs, run_campaign

N = int(sys.argv[1]) if len(sys.argv) > 1 else 60


def main() -> None:
    t0 = time.time()

    print("=== OC gaps (V100, named stencils) ===")
    for ndim in (2, 3):
        camp = run_campaign(benchmark_stencils(ndim), gpus=("V100",), n_settings=8)
        gaps = [
            max(r.best_time_ms for r in p.oc_results.values()) / p.best_time_ms
            for p in camp.profiles["V100"]
        ]
        print(f"  {ndim}D avg gap {np.mean(gaps):6.2f}  max {max(gaps):6.1f}")

    print("=== label structure (random 2-D population) ===")
    pop = generate_population(2, N, seed=1)
    a = run_campaign(pop, n_settings=8, seed=2, sigma=0.03, gpus=("V100", "A100"))
    b = run_campaign(pop, n_settings=8, seed=77, sigma=0.03, gpus=("V100", "A100"))
    g = merge_ocs(a, n_classes=5)
    print("  reps:", g.representatives, "sizes:", [len(x) for x in g.groups])
    for gpu in ("V100", "A100"):
        ga = [g.label(x) for x in a.best_oc_labels(gpu)]
        gb = [g.label(x) for x in b.best_oc_labels(gpu)]
        agree = np.mean([x == y for x, y in zip(ga, gb)])
        print(f"  {gpu}: agree {agree:.2f}  dist {collections.Counter(ga)}")

    print("=== cross-arch (named stencils) ===")
    for ndim in (2, 3):
        camp = run_campaign(benchmark_stencils(ndim), n_settings=8)
        wins = collections.Counter()
        inversions = []
        for i, s in enumerate(camp.stencils):
            times = {gpu: camp.profiles[gpu][i].best_time_ms for gpu in camp.gpus}
            wins[min(times, key=times.get)] += 1
            if times["V100"] < times["A100"]:
                inversions.append(s.name)
        print(f"  {ndim}D wins {dict(wins)}  V100>A100 on: {inversions}")

    print(f"total {time.time() - t0:.1f}s")


if __name__ == "__main__":
    main()
