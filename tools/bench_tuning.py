"""Tuning strategy-zoo recorder (developer / CI tool).

Runs every registered strategy through ``repro.tuning.tune`` on the
bench slice at equal fidelity-weighted budget (see
``repro.tuning.bench``) and reports each strategy's geometric-mean
best-time ratio against the random baseline, then measures the
persistent tuning cache's cold-vs-warm replay speedup over the parallel
dispatch substrate.  Both sections are written as one JSON document --
``BENCH_tuning.json`` at the repo root by convention, so the strategy
zoo's quality trajectory is machine-readable across PRs.

Run: python tools/bench_tuning.py [--quick] [--budget N] [--seed N]
         [-o PATH] [--skip-cache]
"""

import argparse
import json
import sys

from repro.tuning.bench import BENCH_BUDGET, run_cache_bench, run_strategy_bench


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="small workload for CI smoke runs (fewer stencils, one GPU)",
    )
    ap.add_argument(
        "--budget",
        type=int,
        default=BENCH_BUDGET,
        help="full-fidelity evaluation budget per (stencil, OC, GPU) cell",
    )
    ap.add_argument("--seed", type=int, default=11, help="tuning seed")
    ap.add_argument(
        "-o",
        "--output",
        default="BENCH_tuning.json",
        help="where to write the JSON document",
    )
    ap.add_argument(
        "--skip-cache",
        action="store_true",
        help="only run the strategy comparison",
    )
    args = ap.parse_args(argv)

    doc = {
        "strategies": run_strategy_bench(
            quick=args.quick, budget=args.budget, seed=args.seed
        )
    }
    strat = doc["strategies"]
    print(
        f"strategy zoo (budget {strat['budget']}, "
        f"{strat['n_stencils']} stencils x {len(strat['ocs'])} OCs x "
        f"{len(strat['gpus'])} GPUs)"
    )
    for name, row in sorted(
        strat["strategies"].items(), key=lambda kv: kv[1]["geomean_vs_random"]
    ):
        marker = "<" if row["beats_random"] else " "
        print(
            f"  {name:10s} {row['geomean_vs_random']:.4f}x random {marker} "
            f"({row['mean_trials']:.1f} trials, {row['wall_s']:.2f}s)"
        )

    if not args.skip_cache:
        doc["cache"] = run_cache_bench(
            quick=args.quick, budget=args.budget, seed=args.seed
        )
        cache = doc["cache"]
        print(
            f"persistent cache ({cache['substrate']}, "
            f"{cache['cells']} cells): cold {cache['cold_s']:.3f}s, "
            f"warm {cache['warm_s']:.3f}s -> {cache['speedup']:.1f}x"
        )

    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
