"""Serving throughput recorder (developer / CI tool).

Trains small selector/predictor artifacts, replays a request stream
through the per-request, batched, and concurrent micro-batched paths of
the prediction service (see ``repro.serve.bench``), and writes the
results as JSON -- ``BENCH_serve.json`` at the repo root by convention,
so the serving-path perf trajectory is machine-readable across PRs.

Run: python tools/bench_serve.py [--quick] [--threads N]
         [--max-batch N] [-o PATH]
"""

import argparse
import json
import sys

from repro.serve.bench import run_serve_bench


def _print_endpoint(name: str, doc: dict) -> None:
    per, bat = doc["per_request"], doc["batched"]
    lat = per["latency_ms"]
    print(
        f"  {name:8s} per-request {per['requests_per_sec']:10,.0f} req/s "
        f"(p50 {lat['p50_ms']:.3f} ms, p95 {lat['p95_ms']:.3f} ms, "
        f"p99 {lat['p99_ms']:.3f} ms)"
    )
    print(
        f"  {name:8s} batched     {bat['requests_per_sec']:10,.0f} req/s "
        f"({doc['batched_speedup']:.2f}x per-request)"
    )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="small workload for CI smoke runs (no speedup guarantee)",
    )
    ap.add_argument(
        "--threads",
        type=int,
        default=8,
        help="client threads for the concurrent micro-batched phase",
    )
    ap.add_argument(
        "--max-batch", type=int, default=64, help="micro-batch size cap"
    )
    ap.add_argument(
        "-o",
        "--output",
        default="BENCH_serve.json",
        help="where to write the JSON document",
    )
    args = ap.parse_args(argv)

    doc = run_serve_bench(
        quick=args.quick, max_batch=args.max_batch, threads=args.threads
    )
    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")

    print(
        f"serve throughput ({doc['n_requests']} requests, "
        f"{doc['selector']}, {doc['predictor']})"
    )
    _print_endpoint("select", doc["select"])
    _print_endpoint("predict", doc["predict"])
    con = doc["concurrent_select"]
    lat = con["latency_ms"]
    print(
        f"  {'select':8s} concurrent  {con['requests_per_sec']:10,.0f} req/s "
        f"({con['threads']} threads, mean batch "
        f"{con['batches']['mean_size']:.1f}, p95 {lat['p95_ms']:.3f} ms)"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
