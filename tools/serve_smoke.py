"""End-to-end serving smoke check (CI tool, asserts and exits nonzero).

Exercises the full train -> publish -> serve -> query loop over real
HTTP on an ephemeral port:

1. profiles a tiny 2-D campaign and publishes selector + predictor
   artifacts into a temporary registry,
2. starts the stdlib HTTP server in-process,
3. runs client queries through ``repro.serve.client.ServeClient``:
   model-served selections (single and batched), a time prediction, a
   3-D selection that must degrade to the heuristic fallback, and a
   bad request that must map to a clean error,
4. scrapes ``/stats`` and asserts the telemetry counters line up with
   the traffic just sent.

Run: python tools/serve_smoke.py
"""

import sys
import tempfile
import threading

from repro.errors import ServiceError
from repro.profiling import run_campaign
from repro.profiling.train import (
    train_predictor_artifact,
    train_selector_artifact,
)
from repro.serve import ModelRegistry, PredictionService
from repro.serve.client import ServeClient
from repro.serve.http import make_server
from repro.serve.registry import default_artifact_name
from repro.stencil.generator import generate_population


def check(cond: bool, what: str) -> None:
    if not cond:
        raise AssertionError(what)
    print(f"  ok: {what}")


def main() -> int:
    print("training artifacts on a tiny campaign...")
    pop = generate_population(2, 6, seed=11)
    campaign = run_campaign(pop, gpus=("V100", "A100"), n_settings=3, seed=11)
    selector = train_selector_artifact(campaign, "V100", seed=11)
    predictor = train_predictor_artifact(campaign, seed=11)

    with tempfile.TemporaryDirectory() as tmp:
        registry = ModelRegistry(tmp)
        for art in (selector, predictor):
            name = default_artifact_name(
                art.kind, art.method, art.gpu, art.ndim
            )
            registry.publish(art, name)

        service = PredictionService(registry=registry)
        check(not service.degraded, "registry loaded with no degradation")
        server = make_server(service)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        print(f"serving on http://{host}:{port}")
        client = ServeClient(f"http://{host}:{port}")

        try:
            check(client.healthz()["ok"] is True, "/healthz answers")

            from repro.optimizations import OC_BY_NAME

            r = client.select("star2d2r", "V100")
            check(r["source"] == "model", "2d selection served by the model")
            check(r["oc"] in OC_BY_NAME, "selection names a known OC")

            batch = client.select_batch(
                [
                    {"stencil": "star2d2r", "gpu": "V100"},
                    {"stencil": "box2d1r", "gpu": "V100"},
                    {"stencil": "star2d1r", "gpu": "V100"},
                ]
            )
            check(
                len(batch) == 3
                and all(b["source"] == "model" for b in batch),
                "batched selections served by the model",
            )

            fb = client.select("star3d2r", "A100")
            check(
                fb["source"] == "fallback",
                "3d selection degrades to the heuristic fallback",
            )

            t = client.predict(
                "star2d2r", "ST_RT", "A100", {"block_x": 64, "block_y": 4}
            )
            check(t > 0, f"prediction is positive ({t:.3f} ms)")

            try:
                client.select("no-such-stencil", "V100")
                check(False, "bad stencil must raise")
            except ServiceError as e:
                check("unknown stencil" in str(e), "bad request maps to 400")

            stats = client.stats()
            check(
                stats["requests"].get("select") == 5,
                "select request counter matches traffic",
            )
            check(
                stats["requests"].get("predict") == 1,
                "predict request counter matches traffic",
            )
            check(stats["fallbacks"] == 1, "one fallback counted")
            check(stats["errors_total"] == 1, "one error counted")
            check(
                stats["feature_cache"]["hits"] > 0,
                "feature cache saw repeat stencils",
            )
            # Latency is tracked on the single-request front door; the
            # explicit batch call reports through the batch counters.
            check(
                stats["latency"]["select"]["count"] == 2,
                "latency histogram saw both single selects",
            )
            check(
                "2d/V100" in stats["capabilities"]["selectors"],
                "capabilities list the installed selector",
            )
        finally:
            server.shutdown()
            server.server_close()

    print("serve smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
