"""Analytical-model benchmark recorder (developer / CI tool).

Runs the selection and regression benches of
``repro.analysis.bench`` on held-out stencils and reports:

- selection accuracy (top-1 / near-optimal / geomean slowdown) of the
  statically-autotuned :class:`~repro.ml.AnalyticalSelector` against
  the heuristic ladder and the trained GBDT selector;
- held-out runtime fidelity (PCC / log-PCC / MAPE) of the plain GBDT
  regressor, the hybrid regressor (GBDT + analytical metric columns)
  and the raw static estimate.

Both sections are written as one JSON document --
``BENCH_analytical.json`` at the repo root by convention, so the
analytical model's quality trajectory is machine-readable across PRs.

Run: python tools/bench_analytical.py [--quick] [--seed N] [-o PATH]
"""

import argparse
import json
import sys

from repro.analysis.bench import run_analytical_bench


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="small workload for CI smoke runs (fewer stencils, one GPU)",
    )
    ap.add_argument("--seed", type=int, default=29, help="campaign seed")
    ap.add_argument(
        "-o",
        "--output",
        default="BENCH_analytical.json",
        help="where to write the JSON document",
    )
    args = ap.parse_args(argv)

    doc = run_analytical_bench(quick=args.quick, seed=args.seed)

    sel = doc["selection"]
    print(
        f"selection ({sel['n_test_stencils']} held-out stencils x "
        f"{len(sel['gpus'])} GPUs x {len(sel['ocs'])} OCs, "
        f"regret <= {sel['regret_threshold']:.2f})"
    )
    for name, row in sorted(
        sel["selectors"].items(), key=lambda kv: kv[1]["geomean_slowdown"]
    ):
        print(
            f"  {name:17s} top1 {row['top1']:.3f}  "
            f"near-opt {row['near_optimal']:.3f}  "
            f"geomean {row['geomean_slowdown']:.4f}x  "
            f"({row['wall_s']:.2f}s)"
        )

    reg = doc["regression"]
    print("regression (held-out runtime fidelity)")
    for name, row in sorted(
        reg["predictors"].items(), key=lambda kv: -kv[1]["pcc"]
    ):
        print(f"  {name:11s} PCC {row['pcc']:.4f}  log-PCC {row['log_pcc']:.4f}")

    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
