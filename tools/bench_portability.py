"""Cross-vendor portability benchmark recorder (developer / CI tool).

Runs the transfer benches of ``repro.analysis.portability``: selectors
trained on NVIDIA profiling campaigns are scored on held-out stencils
measured on AMD-class targets, in three regimes per family --
``zero_shot`` (NVIDIA training data only), ``plus_one_amd`` (NVIDIA
plus the MI100 rows) and ``native`` (trained on the target itself, the
in-distribution ceiling).

The document is written as ``BENCH_portability.json`` at the repo root
by convention, so the cross-vendor transfer trajectory is
machine-readable across PRs.

Run: python tools/bench_portability.py [--quick] [--seed N] [-o PATH]
"""

import argparse
import json
import sys

from repro.analysis.portability import run_portability_bench


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="small workload for CI smoke runs (fewer stencils/GPUs)",
    )
    ap.add_argument("--seed", type=int, default=31, help="campaign seed")
    ap.add_argument(
        "-o",
        "--output",
        default="BENCH_portability.json",
        help="where to write the JSON document",
    )
    args = ap.parse_args(argv)

    doc = run_portability_bench(quick=args.quick, seed=args.seed)

    sel = doc["selection"]
    print(
        f"selection transfer ({sel['n_test_stencils']} held-out stencils, "
        f"targets {', '.join(sel['targets'])}, "
        f"sources {', '.join(sel['nvidia_sources'])} "
        f"[+{sel['amd_train_gpu']}], regret <= {sel['regret_threshold']:.2f})"
    )
    for name, fam in sorted(
        sel["families"].items(),
        key=lambda kv: -kv[1]["regimes"]["zero_shot"]["near_optimal"],
    ):
        r = fam["regimes"]
        frac = fam["recovery_fraction"]
        frac_s = f"{frac:+.2f}" if frac is not None else "  n/a"
        print(
            f"  {name:17s} near-opt zs {r['zero_shot']['near_optimal']:.3f}"
            f" -> +1amd {r['plus_one_amd']['near_optimal']:.3f}"
            f" (native {r['native']['near_optimal']:.3f},"
            f" recovered {frac_s})  ({fam['wall_s']:.2f}s)"
        )

    reg = doc["regression"]
    print("regression transfer (held-out AMD runtime fidelity)")
    for name, row in reg["predictors"].items():
        print(
            f"  {name:11s} PCC zs {row['zero_shot']['pcc']:.4f}"
            f" -> +1amd {row['plus_one_amd']['pcc']:.4f}  "
            f"log-PCC zs {row['zero_shot']['log_pcc']:.4f}"
            f" -> +1amd {row['plus_one_amd']['log_pcc']:.4f}"
        )

    with open(args.output, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
