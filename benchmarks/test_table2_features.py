"""Table II: the candidate feature set of a stencil."""

from repro.stencil import describe, extract_features, feature_names, get

from conftest import print_table


def test_table2_features(benchmark):
    meanings = {
        "order": "The maximum extent of non-zeros.",
        "nnz": "The number of non-zeros in the tensor.",
        "sparsity": "The density of non-zeros in the tensor.",
        "nnz_order_n": "The number of non-zeros of order-n neighbors.",
        "nnzRatio_order_n": "The ratio of non-zeros of order-n neighbors.",
    }
    rows = [[i + 1, k, v] for i, (k, v) in enumerate(meanings.items())]
    print_table("Table II: candidate feature set", ["No.", "Feature", "Meaning"], rows)

    s = get("box2d2r")
    feats = benchmark(extract_features, s)
    named = describe(s)
    print_table(
        f"example extraction: {s.name}",
        ["feature", "value"],
        [[k, float(v)] for k, v in named.items()],
    )
    assert len(feats) == len(feature_names())
    assert named["order"] == 2 and named["nnz"] == 25
