"""Shared infrastructure for the figure/table reproduction benches.

Every bench reproduces one table or figure of the paper at the scale
selected by ``REPRO_SCALE`` (default ``small``; see ``repro.config``).
Expensive artifacts -- the motivation campaigns over the named stencils
and the StencilMART datasets over random populations -- are session-scoped
fixtures shared across benches.

Each bench prints the rows/series the paper reports (captured with ``-s``
or in the pytest-benchmark summary) and asserts the qualitative shape.
"""

from __future__ import annotations

import pytest

from repro.config import get_scale
from repro.core import StencilMART
from repro.gpu.specs import GPU_ORDER
from repro.profiling import run_campaign
from repro.stencil import benchmark_stencils


SCALE = get_scale()


def pytest_report_header(config):
    return (
        f"repro benches at scale '{SCALE.name}': "
        f"{SCALE.n_stencils_2d} 2-D / {SCALE.n_stencils_3d} 3-D stencils, "
        f"{SCALE.n_settings} settings/OC, {SCALE.n_folds}-fold CV"
    )


@pytest.fixture(scope="session")
def scale():
    return SCALE


@pytest.fixture(scope="session")
def motivation_2d():
    """Named 2-D benchmark stencils profiled on all four GPUs."""
    return run_campaign(
        benchmark_stencils(2), gpus=GPU_ORDER, n_settings=SCALE.n_settings, seed=101
    )


@pytest.fixture(scope="session")
def motivation_3d():
    """Named 3-D benchmark stencils profiled on all four GPUs."""
    return run_campaign(
        benchmark_stencils(3), gpus=GPU_ORDER, n_settings=SCALE.n_settings, seed=101
    )


def _mart(ndim: int, n_stencils: int) -> StencilMART:
    mart = StencilMART(
        ndim=ndim, gpus=GPU_ORDER, n_settings=SCALE.n_settings, seed=303
    )
    mart.build_dataset(n_stencils=n_stencils)
    return mart


@pytest.fixture(scope="session")
def mart_2d():
    """StencilMART over the random 2-D population (Figs. 9-15)."""
    return _mart(2, SCALE.n_stencils_2d)


@pytest.fixture(scope="session")
def mart_3d():
    """StencilMART over the random 3-D population (Figs. 9-15)."""
    return _mart(3, SCALE.n_stencils_3d)


def print_table(title: str, header: "list[str]", rows: "list[list]") -> None:
    """Uniform fixed-width table printer for bench output."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    print("  " + "  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for r in rows:
        print("  " + "  ".join(_fmt(c).ljust(w) for c, w in zip(r, widths)))


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)
