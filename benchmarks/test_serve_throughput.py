"""Serving throughput: micro-batched vs per-request model calls.

The prediction service exists so that trained StencilMART models answer
online queries without retraining; its perf claim is that coalescing
concurrent requests into vectorized model calls is worth the plumbing.
This bench replays one request stream through the per-request reference
path, the chunked batch path, and the real thread-fed micro-batcher
(see ``repro.serve.bench``), and asserts the acceptance bar from
ISSUE 5: batched throughput >= 3x per-request on both endpoints, with
p50/p95/p99 latencies recorded for the JSON trail.
"""

from repro.serve.bench import run_serve_bench

from conftest import print_table


def test_serve_throughput(benchmark):
    doc = run_serve_bench()

    rows = []
    for name in ("select", "predict"):
        ep = doc[name]
        lat = ep["per_request"]["latency_ms"]
        rows.append(
            [
                f"{name} per-request",
                ep["per_request"]["seconds"],
                ep["per_request"]["requests_per_sec"],
                1.0,
                lat["p50_ms"],
                lat["p95_ms"],
                lat["p99_ms"],
            ]
        )
        rows.append(
            [
                f"{name} batched",
                ep["batched"]["seconds"],
                ep["batched"]["requests_per_sec"],
                ep["batched_speedup"],
                "-",
                "-",
                "-",
            ]
        )
    con = doc["concurrent_select"]
    lat = con["latency_ms"]
    rows.append(
        [
            f"select x{con['threads']} threads",
            con["seconds"],
            con["requests_per_sec"],
            "-",
            lat["p50_ms"],
            lat["p95_ms"],
            lat["p99_ms"],
        ]
    )
    print_table(
        f"Serve throughput ({doc['n_requests']} requests, "
        f"max_batch={doc['max_batch']})",
        ["path", "seconds", "req/sec", "speedup", "p50 ms", "p95 ms", "p99 ms"],
        rows,
    )

    # The serving acceptance bar (ISSUE 5): vectorized micro-batches
    # clear >=3x the per-request reference on both endpoints.
    assert doc["select"]["batched_speedup"] >= 3.0
    assert doc["predict"]["batched_speedup"] >= 3.0
    # The real micro-batcher must actually coalesce under threaded load
    # (mean batch > 1) and answer every request exactly once.
    assert con["batches"]["mean_size"] > 1.0
    assert con["batches"]["requests"] == doc["n_requests"]
    # Latency percentiles are recorded and ordered.
    for ep in (doc["select"]["per_request"], con):
        p = ep["latency_ms"]
        assert 0 < p["p50_ms"] <= p["p95_ms"] <= p["p99_ms"]

    # Representative timing unit: one max-batch select_many call on a
    # warm service.
    from repro.serve.bench import _Harness, _make_requests, _train_artifacts

    sel, pred = _train_artifacts(quick=True, seed=0)
    selects, _ = _make_requests(quick=True, seed=0)
    svc = _Harness(sel, pred, 64).service()
    svc.select_many(selects)  # warm cache before timing
    benchmark(svc.select_many, selects)
