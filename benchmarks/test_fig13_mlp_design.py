"""Fig. 13: MLP sensitivity to hidden-layer count and layer size.

Paper: sweeping 4-10 layers and sizes 2^4-2^10, test error decreases with
depth and width, with diminishing returns beyond seven layers (the default
adopted by StencilMART).  We sweep a scaled-down grid of the same axes.
"""

import numpy as np

from repro.ml import MLPRegressor, mape
from repro.profiling import kfold_indices

from conftest import print_table

LAYERS = (4, 7, 10)
SIZES = (16, 64, 256)


def test_fig13_mlp_design(mart_2d, mart_3d, scale, benchmark):
    rows = []
    grid = {}
    for ndim, mart in ((2, mart_2d), (3, mart_3d)):
        ds = mart.regression_dataset(("V100",))
        idx = mart._row_subset(ds.n_samples, 4000)
        X, y = ds.features[idx], ds.times_ms[idx]
        train, test = next(kfold_indices(len(idx), 4, seed=1))
        for n_layers in LAYERS:
            for size in SIZES:
                model = MLPRegressor(
                    n_layers=n_layers, layer_size=size,
                    epochs=scale.nn_epochs, batch_size=64, lr=2e-3, seed=0,
                )
                model.fit(X[train], y[train])
                err = mape(y[test], model.predict(X[test]))
                grid[(ndim, n_layers, size)] = err
        rows += [
            [f"{ndim}D", n, *(grid[(ndim, n, s)] for s in SIZES)] for n in LAYERS
        ]
    print_table(
        "Fig. 13: MLP test error (MAPE %) vs layers x layer size (V100)",
        ["dims", "layers"] + [f"size {s}" for s in SIZES],
        rows,
    )

    for ndim in (2, 3):
        errs = {k: v for k, v in grid.items() if k[0] == ndim}
        # Capacity helps: the best configuration is not the smallest one.
        best = min(errs, key=errs.get)
        assert best[1:] != (LAYERS[0], SIZES[0])
        # Wider layers help at fixed depth 7 (paper's adopted default).
        assert errs[(ndim, 7, 256)] < errs[(ndim, 7, 16)]

    benchmark.pedantic(
        lambda: MLPRegressor(n_layers=4, layer_size=16, epochs=2, seed=0).fit(
            np.random.default_rng(0).random((256, 8)), np.ones(256) + 1.0
        ),
        rounds=1,
        iterations=1,
    )
