"""Fig. 3: distribution of top-100 pairwise-OC PCCs per GPU.

Paper: the top-100 PCC distributions are close across GPUs, and the
intersection of top pairs across all architectures is ~28% of the total --
the basis for merging OCs into fewer prediction classes.
"""

import numpy as np

from repro.profiling import oc_time_matrix, pairwise_pcc, pcc_intersection, top_pairs

from conftest import print_table


def test_fig03_pcc(mart_2d, benchmark):
    campaign = mart_2d.campaign
    per_gpu_top = {}
    rows = []
    for gpu in campaign.gpus:
        _, m = oc_time_matrix(campaign, gpu)
        pcc = benchmark.pedantic(
            pairwise_pcc, args=(m,), rounds=1, iterations=1
        ) if gpu == campaign.gpus[0] else pairwise_pcc(m)
        pairs = top_pairs(pcc, 100)
        per_gpu_top[gpu] = pairs
        vals = np.array([abs(v) for _, _, v in pairs])
        rows.append(
            [gpu, len(pairs), float(vals.min()), float(np.median(vals)),
             float(vals.max())]
        )
    print_table(
        "Fig. 3: top-100 pairwise-OC |PCC| distribution per GPU",
        ["GPU", "pairs", "min", "median", "max"],
        rows,
    )
    common = pcc_intersection(per_gpu_top)
    share = len(common) / 100
    print(f"\n  cross-architecture intersection: {len(common)}/100 "
          f"({share:.0%}; paper: 28%)")

    # Strong correlations exist and a substantial cross-GPU intersection
    # supports merging; it is neither empty nor everything.
    for row in rows:
        assert row[4] > 0.9  # strongest pairs are near-perfectly correlated
    assert 0.05 <= share <= 0.95
