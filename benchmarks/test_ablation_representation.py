"""Ablation: stencil representation for OC selection.

DESIGN.md calls out the choice between the Table II feature set and the
Fig. 6 binary tensor.  This bench compares three encodings on the same
labels: GBDT over features (the paper's pairing), GBDT over the flattened
tensor, and ConvNet over the tensor -- quantifying what each representation
contributes ("which representation is more suitable depends on the
performance comparison in specific scenarios", Section IV-C).
"""

import numpy as np

from repro.ml import ConvNetClassifier, GBDTClassifier, accuracy
from repro.profiling import stratified_kfold_indices

from conftest import print_table


def _cv(make, X, labels, n_folds, seed):
    accs = []
    for tr, te in stratified_kfold_indices(labels, n_folds, seed):
        model = make()
        model.fit(X[tr], labels[tr])
        accs.append(accuracy(labels[te], model.predict(X[te])))
    return float(np.mean(accs))


def test_ablation_representation(mart_2d, scale, benchmark):
    gpu = "V100"
    ds = mart_2d.classification_dataset(gpu)
    flat = ds.tensors.reshape(ds.n_samples, -1)
    results = {
        "GBDT + features": _cv(
            lambda: GBDTClassifier(n_rounds=60, learning_rate=0.15, max_depth=3, seed=0),
            ds.features, ds.labels, scale.n_folds, 0,
        ),
        "GBDT + flat tensor": _cv(
            lambda: GBDTClassifier(n_rounds=60, learning_rate=0.15, max_depth=3, seed=0),
            flat, ds.labels, scale.n_folds, 0,
        ),
        "ConvNet + tensor": _cv(
            lambda: ConvNetClassifier(
                n_classes=ds.n_classes, epochs=scale.nn_epochs, seed=0
            ),
            ds.tensors, ds.labels, scale.n_folds, 0,
        ),
    }
    print_table(
        f"Ablation: representation for OC selection ({gpu}, 2-D)",
        ["representation", "accuracy"],
        [[k, v] for k, v in results.items()],
    )
    chance = 1.0 / ds.n_classes
    assert all(v > chance for v in results.values())

    benchmark.pedantic(
        lambda: GBDTClassifier(n_rounds=10, seed=0).fit(ds.features, ds.labels),
        rounds=1,
        iterations=1,
    )
