"""Table I: the six optimizations, their constraints, and the OC space."""

from repro.optimizations import TABLE_I, Opt, enumerate_ocs

from conftest import print_table


def test_table1_optimizations(benchmark):
    rows = [
        [info.number, info.full_name, info.opt.value, info.constraint]
        for info in TABLE_I
    ]
    print_table(
        "Table I: optimizations of stencil computation on GPUs",
        ["No.", "Optimization", "Abbrev", "Constraint"],
        rows,
    )
    ocs = benchmark(enumerate_ocs)
    print(f"\n  valid optimization combinations: {len(ocs)}")

    assert len(TABLE_I) == 6
    assert len(ocs) == 30
    # Constraint spot checks straight from the table.
    names = {oc.name for oc in ocs}
    assert "ST_RT" in names and "RT" not in names
    assert "ST_PR" in names and "PR" not in names
    assert not any({"BM", "CM"} <= set(n.split("_")) for n in names)
    assert "TB" in names  # TB has no enabling constraint
    assert all(opt in {o.opt for o in TABLE_I} for opt in Opt)
