"""Engine throughput: batched evaluation vs the scalar reference.

The batched evaluation engine exists to make profiling campaigns cheap:
``repro profile`` spends essentially all of its time evaluating (stencil,
OC, setting) points, so points/second through a backend *is* campaign
throughput.  This bench times every backend kind over a representative
campaign slice -- random stencils x all 30 OCs x sampled frontiers,
crashes included, cold model caches -- and asserts the engine's headline
guarantee: the vectorized backend clears >=5x the scalar path, and a
warm cache replays the slice one to two orders of magnitude faster
still.
"""

from repro.engine import make_backend
from repro.engine.bench import make_workload, run_throughput_bench

from conftest import print_table


def test_engine_throughput(benchmark):
    doc = run_throughput_bench()

    rows = [
        [kind, row["seconds"], row["points_per_sec"], row["speedup_vs_scalar"]]
        for kind, row in doc["backends"].items()
    ]
    replay = doc["cached_replay"]
    rows.append(
        [
            "cached (replay)",
            replay["seconds"],
            replay["points_per_sec"],
            replay["speedup_vs_scalar"],
        ]
    )
    print_table(
        f"Engine throughput ({doc['gpu']}, {doc['n_points']} points)",
        ["backend", "seconds", "points/sec", "speedup"],
        rows,
    )

    # The engine's acceptance bar: >=5x points/sec over the scalar path
    # on a representative campaign slice (ISSUE 2), and cache replay far
    # beyond that.
    assert doc["backends"]["vector"]["speedup_vs_scalar"] >= 5.0
    assert (
        replay["speedup_vs_scalar"]
        > doc["backends"]["vector"]["speedup_vs_scalar"]
    )
    # Sanity: all backends saw the same number of points.
    assert doc["n_points"] == len(make_workload(settings_per_oc=32))

    # Representative timing unit: one vectorized batch over a quick slice.
    workload = make_workload(n_stencils=1, settings_per_oc=4)
    be = make_backend("vector", "V100")
    benchmark(be.evaluate_batch, workload)
