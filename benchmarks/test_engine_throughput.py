"""Engine throughput: batched evaluation vs the scalar reference.

The batched evaluation engine exists to make profiling campaigns cheap:
``repro profile`` spends essentially all of its time evaluating (stencil,
OC, setting) points, so points/second through a backend *is* campaign
throughput.  This bench times every backend kind over a representative
campaign slice -- random stencils x all 30 OCs x sampled frontiers,
crashes included, cold model caches -- and asserts the engine's headline
guarantees: the vectorized backend clears >=5x the scalar path, a cold
(all-miss) cached pass stays within 0.9x of the bare vector throughput,
and a warm cache replays the slice one to two orders of magnitude faster
still.  The worker sweep asserts the multi-core campaign win where the
host actually has the cores for it.
"""

import os
import sys
import time

import numpy as np

from repro.engine import make_backend
from repro.engine.bench import (
    make_workload,
    run_parallel_bench,
    run_throughput_bench,
)
from repro.ml.nn import ConvND

from conftest import print_table

_CTX = "fork" if sys.platform.startswith("linux") else "spawn"


def test_engine_throughput(benchmark):
    doc = run_throughput_bench()

    rows = [
        [kind, row["seconds"], row["points_per_sec"], row["speedup_vs_scalar"]]
        for kind, row in doc["backends"].items()
    ]
    replay = doc["cached_replay"]
    rows.append(
        [
            "cached (replay)",
            replay["seconds"],
            replay["points_per_sec"],
            replay["speedup_vs_scalar"],
        ]
    )
    print_table(
        f"Engine throughput ({doc['gpu']}, {doc['n_points']} points)",
        ["backend", "seconds", "points/sec", "speedup"],
        rows,
    )

    # The engine's acceptance bar: >=5x points/sec over the scalar path
    # on a representative campaign slice (ISSUE 2), and cache replay far
    # beyond that.
    assert doc["backends"]["vector"]["speedup_vs_scalar"] >= 5.0
    assert (
        replay["speedup_vs_scalar"]
        > doc["backends"]["vector"]["speedup_vs_scalar"]
    )
    # A cold cached pass is all misses plus memo bookkeeping; the
    # interned-key miss path keeps that overhead under ~10%.  Shared
    # runners add +-10% timer noise, so gate on the best paired trial
    # (vector and cached timed back to back under the same load).
    from repro.engine.bench import _clear_model_caches

    workload32 = make_workload(settings_per_oc=32)
    vec = make_backend("vector", "V100")
    cac = make_backend("cached", "V100")
    best_ratio = 0.0
    for _ in range(5):
        _clear_model_caches()
        start = time.perf_counter()
        vec.evaluate_batch(workload32)
        v = time.perf_counter() - start
        _clear_model_caches()
        cac.clear()
        start = time.perf_counter()
        cac.evaluate_batch(workload32)
        c = time.perf_counter() - start
        best_ratio = max(best_ratio, v / c)
        if best_ratio >= 0.9:
            break
    assert best_ratio >= 0.9
    # Sanity: all backends saw the same number of points.
    assert doc["n_points"] == len(make_workload(settings_per_oc=32))

    # Representative timing unit: one vectorized batch over a quick slice.
    workload = make_workload(n_stencils=1, settings_per_oc=4)
    be = make_backend("vector", "V100")
    benchmark(be.evaluate_batch, workload)


def test_parallel_worker_sweep(benchmark):
    doc = run_parallel_bench(context=_CTX)

    rows = [
        [f"backend/{t}", w, row["seconds"], row["points_per_sec"],
         row["speedup_vs_1"]]
        for t, sweep in doc["backend_sweep"].items()
        for w, row in sweep.items()
    ] + [
        ["campaign", w, row["seconds"], row["measurements_per_sec"],
         row["speedup_vs_1"]]
        for w, row in doc["campaign"]["sweep"].items()
    ]
    print_table(
        f"Worker sweep ({doc['gpu']}, {doc['cpu_count']} CPUs, "
        f"{doc['n_points']} points)",
        ["path", "workers", "seconds", "throughput", "speedup"],
        rows,
    )

    # Multi-core acceptance bars: a 4-worker sharded campaign clears
    # >=2.5x the single-process vector runner, the shared-memory
    # transport clears >=2.5x its own 1-worker bypass at 4 workers and
    # >=1.5x the pickle codec at equal workers.  Only meaningful where
    # the host actually has >=4 CPUs -- a 1-CPU container cannot speed
    # anything up by adding processes, so there the sweep just records
    # honest ~1x numbers (cpu_count travels in the JSON for readers).
    if (os.cpu_count() or 1) >= 4:
        assert doc["campaign"]["sweep"]["4"]["speedup_vs_1"] >= 2.5
        assert doc["backend_sweep"]["shm"]["4"]["speedup_vs_1"] >= 2.5
        assert doc["shm_vs_pickle"]["4"] >= 1.5
    # Everywhere: sharding must not corrupt anything -- every sweep
    # point saw the full workload (asserted inside the bench) and
    # produced positive throughput.
    for sweep in doc["backend_sweep"].values():
        for row in sweep.values():
            assert row["points_per_sec"] > 0
    for row in doc["campaign"]["sweep"].values():
        assert row["measurements_per_sec"] > 0

    # Timing unit: a sharded batch through a persistent 2-worker pool.
    from repro.engine import BackendSpec, ParallelBackend

    workload = make_workload(n_stencils=1, settings_per_oc=4)
    with ParallelBackend(
        BackendSpec(kind="vector", gpu="V100"), workers=2, context=_CTX
    ) as be:
        be.evaluate_batch(workload)  # warm the pool before timing
        benchmark(be.evaluate_batch, workload)


def test_convnd_index_build(benchmark):
    """The vectorized gather-table build vs the per-element reference.

    ConvND builds its im2col index table once per layer; for a 3-channel
    9^3 input that table has ~one million entries and the Python loop
    dominated ConvNet construction.  The outer-sum build must be at
    least 3x faster (observed ~100x) while producing the identical
    table (parity is asserted in tier-1 tests).
    """
    rng = np.random.default_rng(0)
    conv = ConvND(3, 2, (9, 9, 9), 3, rng)

    start = time.perf_counter()
    vec = conv._build_index()
    vec_s = time.perf_counter() - start
    start = time.perf_counter()
    loop = conv._build_index_loop()
    loop_s = time.perf_counter() - start

    print_table(
        "ConvND index build (3 channels, 9x9x9, k=3)",
        ["variant", "seconds", "entries/sec"],
        [
            ["vectorized", vec_s, vec.size / vec_s],
            ["loop", loop_s, loop.size / loop_s],
        ],
    )
    assert np.array_equal(vec, loop)
    assert loop_s >= 3.0 * vec_s

    benchmark(conv._build_index)
