"""Fig. 14: ground truth and prediction accuracy of the fastest GPU.

Paper: across stencil instances, 2080Ti/P100/V100/A100 win 20.2/17.8/40.2/
21.8% (2-D) and 20.1/16.6/26.4/36.9% (3-D); StencilMART identifies the
fastest GPU with 96.7%/97.3% average accuracy.

Documented deviation: our simulated 2080Ti is FP64-bound, so it wins no
instances; the remaining three GPUs split the wins (see EXPERIMENTS.md).
"""

from repro.core import RentalAdvisor, build_cross_gpu_instances
from repro.gpu import GPU_ORDER
from repro.stencil import generate_population

from conftest import print_table


def _instances(mart, n_fresh, seed):
    fresh = generate_population(mart.ndim, n_fresh, seed=seed)
    return build_cross_gpu_instances(
        fresh, GPU_ORDER, n_per_stencil=4, seed=seed, sigma=mart.sigma
    )


def test_fig14_pure_performance(mart_2d, mart_3d, scale, benchmark):
    rows = []
    overall = []
    for ndim, mart in ((2, mart_2d), (3, mart_3d)):
        mart.fit_predictor(
            "gbr", max_rows=8000, n_rounds=scale.gbdt_rounds, max_depth=6
        )
        advisor = RentalAdvisor(mart, method="gbr")
        instances = _instances(mart, n_fresh=12, seed=7000 + ndim)
        res = advisor.evaluate(instances, GPU_ORDER)
        overall.append(res.overall_accuracy)
        for g in GPU_ORDER:
            rows.append([f"{ndim}D", g, res.shares[g], res.accuracies[g]])
        rows.append([f"{ndim}D", "overall", 1.0, res.overall_accuracy])
    print_table(
        "Fig. 14: best GPU by pure performance (share of instances won, "
        "prediction accuracy)",
        ["dims", "GPU", "ground-truth share", "pred. accuracy"],
        rows,
    )
    print(f"\n  overall accuracy 2D/3D: {overall[0]:.1%} / {overall[1]:.1%} "
          "(paper: 96.7% / 97.3%)")

    # The decision is predictable well above chance (1/4), and the winner
    # is not a single GPU across the board.
    assert min(overall) > 0.5
    shares_2d = {r[1]: r[2] for r in rows if r[0] == "2D" and r[1] != "overall"}
    assert max(shares_2d.values()) < 1.0

    inst = _instances(mart_2d, 1, seed=1)[0]
    advisor = RentalAdvisor(mart_2d, method="gbr")
    benchmark(advisor.recommend_fastest, inst, GPU_ORDER)
