"""Ablation: PCC-based OC merging on/off (Section IV-D).

Without merging the classifier must distinguish all raw best-OC labels,
many of which are near-interchangeable streaming variants -- the situation
the paper's merging is designed to avoid ("jumping among OCs with similar
performance ... interferes with prediction results").  We compare 5-class
merged accuracy against raw-label accuracy, and additionally report the
*performance regret* of the merged prediction (how close the representative
OC's best time is to the stencil's true optimum), which is the quantity
that actually matters downstream.
"""

import numpy as np

from repro.ml import GBDTClassifier, accuracy
from repro.profiling import stratified_kfold_indices

from conftest import print_table


def test_ablation_merging(mart_2d, scale, benchmark):
    gpu = "V100"
    campaign = mart_2d.campaign
    grouping = mart_2d.grouping
    ds = mart_2d.classification_dataset(gpu)

    # Raw labels: index into the sorted list of observed best OCs.
    raw_names = sorted(set(ds.best_ocs))
    raw_index = {n: i for i, n in enumerate(raw_names)}
    raw_labels = np.array([raw_index[n] for n in ds.best_ocs])

    def cv(labels):
        accs = []
        for tr, te in stratified_kfold_indices(labels, scale.n_folds, 0):
            m = GBDTClassifier(
                n_rounds=60, learning_rate=0.15, max_depth=3, seed=0
            ).fit(ds.features[tr], labels[tr])
            accs.append(accuracy(labels[te], m.predict(ds.features[te])))
        return float(np.mean(accs))

    merged_acc = cv(ds.labels)
    raw_acc = cv(raw_labels)

    # Regret of predicting each stencil's merged-class representative.
    regrets = []
    for i, profile in enumerate(campaign.profiles[gpu]):
        rep = grouping.representatives[ds.labels[i]]
        rep_time = profile.time_of(rep)
        if np.isfinite(rep_time):
            regrets.append(rep_time / profile.best_time_ms)
    regret = float(np.mean(regrets))

    print_table(
        f"Ablation: PCC merging ({gpu}, 2-D)",
        ["variant", "classes", "accuracy"],
        [
            ["merged (paper)", grouping.n_classes, merged_acc],
            ["raw best-OC labels", len(raw_names), raw_acc],
        ],
    )
    print(f"\n  mean regret of merged representative vs true best: {regret:.3f}x")

    # Merging must make the task no harder, and the representative OC must
    # stay close to optimal performance.
    assert merged_acc >= raw_acc - 0.05
    assert regret < 1.5

    benchmark.pedantic(lambda: cv(ds.labels), rounds=1, iterations=1)
