"""Fig. 15: ground truth and prediction accuracy of the most cost-efficient
rental GPU (the 2080Ti is not offered by Google Cloud).

Paper: P100 is the most cost-efficient for most instances (61.0% of 2-D,
56.7% of 3-D); StencilMART predicts the right rental with 97.3%/96.1%
average accuracy.
"""

from repro.core import RentalAdvisor, build_cross_gpu_instances
from repro.gpu import GPUS, RENTAL_GPUS
from repro.stencil import generate_population

from conftest import print_table


def test_fig15_cost_efficiency(mart_2d, mart_3d, scale, benchmark):
    rows = []
    overall = []
    p100_shares = []
    for ndim, mart in ((2, mart_2d), (3, mart_3d)):
        mart.fit_predictor(
            "gbr", max_rows=8000, n_rounds=scale.gbdt_rounds, max_depth=6
        )
        advisor = RentalAdvisor(mart, method="gbr")
        fresh = generate_population(ndim, 12, seed=8000 + ndim)
        instances = build_cross_gpu_instances(
            fresh, RENTAL_GPUS, n_per_stencil=4, seed=8000 + ndim, sigma=mart.sigma
        )
        res = advisor.evaluate(instances, RENTAL_GPUS, by_cost=True)
        overall.append(res.overall_accuracy)
        p100_shares.append(res.shares["P100"])
        for g in RENTAL_GPUS:
            rows.append(
                [f"{ndim}D", g, f"${GPUS[g].rental_per_hour:.2f}/hr",
                 res.shares[g], res.accuracies[g]]
            )
    print_table(
        "Fig. 15: most cost-efficient rental GPU (share won, pred. accuracy)",
        ["dims", "GPU", "rate", "ground-truth share", "pred. accuracy"],
        rows,
    )
    print(f"\n  P100 cost-efficiency share 2D/3D: "
          f"{p100_shares[0]:.1%} / {p100_shares[1]:.1%} (paper: 61.0% / 56.7%)")
    print(f"  overall accuracy 2D/3D: {overall[0]:.1%} / {overall[1]:.1%} "
          "(paper: 97.3% / 96.1%)")

    # P100's price advantage makes it the cost-efficiency default (paper's
    # key takeaway), and the recommendation is predictable above chance.
    assert max(p100_shares) > 0.4
    assert min(overall) > 0.5

    inst = build_cross_gpu_instances(
        generate_population(2, 1, seed=1), RENTAL_GPUS, n_per_stencil=1, seed=1
    )[0]
    advisor = RentalAdvisor(mart_2d, method="gbr")
    benchmark(advisor.recommend_cheapest, inst, RENTAL_GPUS)
