"""Fig. 1: best-vs-worst OC performance gap per stencil on V100.

Paper: "the performance gap among OCs is significant, where the best OC
achieves an average speedup of 9.95x over the worst OC", with crashed OCs
excluded from the figure.
"""

import numpy as np

from repro.gpu import GPUSimulator
from repro.optimizations import OC, default_setting
from repro.stencil import get

from conftest import print_table


def test_fig01_oc_gap(motivation_2d, motivation_3d, benchmark):
    rows = []
    gaps = []
    for campaign in (motivation_2d, motivation_3d):
        for p in campaign.profiles["V100"]:
            times = {n: r.best_time_ms for n, r in p.oc_results.items()}
            worst_oc = max(times, key=times.get)
            gap = times[worst_oc] / p.best_time_ms
            gaps.append(gap)
            rows.append(
                [p.stencil.name, p.best_oc, worst_oc, gap, len(times), 30 - len(times)]
            )
    print_table(
        "Fig. 1: best OC normalized to worst OC (V100)",
        ["stencil", "best OC", "worst OC", "gap (x)", "valid OCs", "crashed"],
        rows,
    )
    avg = float(np.mean(gaps))
    print(f"\n  average best/worst gap: {avg:.2f}x  (paper: 9.95x)")

    # Shape assertions: a significant, order-of-magnitude-scale gap with
    # crashed combinations present for high-order stencils.
    assert 3.0 < avg < 30.0
    assert max(gaps) > 8.0
    assert any(r[5] > 0 for r in rows)  # some OCs crash (paper Section III-A)

    # Representative timing unit: one simulated kernel run.
    sim = GPUSimulator("V100")
    benchmark(sim.time, get("star2d1r"), OC.parse("naive"), default_setting())
