"""Fig. 9: prediction accuracy of ConvNet, FcNet and GBDT per GPU.

Paper: ConvNet averages 84.4% (2-D) / 83.0% (3-D), GBDT 81.7% / 80.8%,
FcNet trails.  Our simulated labels carry more residual profiling noise
than real hardware margins, so absolute accuracies are lower at small
scale; the shape under test is that the learned selectors clearly beat
chance (1/5 classes) and the majority-class baseline is reported alongside.
"""

import numpy as np

from repro.ml import GBDTClassifier

from conftest import print_table

METHODS = ("convnet", "fcnet", "gbdt")


def _evaluate(mart, scale, epochs):
    out = {}
    for gpu in mart.gpus:
        ds = mart.classification_dataset(gpu)
        majority = float(np.bincount(ds.labels).max() / ds.n_samples)
        accs = {}
        for method in METHODS:
            hyper = {} if method == "gbdt" else {"epochs": epochs}
            r = mart.evaluate_selector(method, gpu, n_folds=scale.n_folds, **hyper)
            accs[method] = r.accuracy
        out[gpu] = (accs, majority)
    return out


def test_fig09_classification(mart_2d, mart_3d, scale, benchmark):
    rows = []
    all_accs = {m: [] for m in METHODS}
    chance_beaten = 0
    for ndim, mart in ((2, mart_2d), (3, mart_3d)):
        results = _evaluate(mart, scale, scale.nn_epochs)
        for gpu, (accs, majority) in results.items():
            rows.append(
                [f"{ndim}D", gpu]
                + [accs[m] for m in METHODS]
                + [majority]
            )
            for m in METHODS:
                all_accs[m].append(accs[m])
                if accs[m] > 1.2 / mart.n_classes:
                    chance_beaten += 1
    print_table(
        "Fig. 9: OC-selection accuracy (5 merged classes)",
        ["dims", "GPU", "ConvNet", "FcNet", "GBDT", "majority"],
        rows,
    )
    for m in METHODS:
        print(f"  mean {m}: {np.mean(all_accs[m]):.3f}")
    print("  (paper: ConvNet 84.4%/83.0%, GBDT 81.7%/80.8%)")

    # Every mechanism must beat chance on most GPU/dims combinations.
    assert chance_beaten >= int(0.6 * len(METHODS) * len(rows))
    assert np.mean(all_accs["gbdt"]) > 0.35
    assert np.mean(all_accs["convnet"]) > 0.30

    # Representative unit: one GBDT fit on the 2-D dataset.
    ds = mart_2d.classification_dataset("V100")
    benchmark.pedantic(
        lambda: GBDTClassifier(n_rounds=20, seed=0).fit(ds.features, ds.labels),
        rounds=1,
        iterations=1,
    )
