"""Ablation: parameter-search strategy (refined random vs csTuner-style GA).

The paper's profiling uses random search; the authors' csTuner [25] uses a
re-designed genetic algorithm.  This bench compares the tuned time each
strategy finds per OC at comparable measurement budgets.
"""

import numpy as np

from repro.gpu import GPUSimulator
from repro.optimizations import OC
from repro.profiling import RandomSearch
from repro.tuning import GeneticSearch
from repro.stencil import generate_population

from conftest import print_table

OCS = ("ST", "ST_RT", "ST_CM_RT_TB")


def test_ablation_search_strategy(scale, benchmark):
    stencils = generate_population(2, 8, seed=55)
    sim = GPUSimulator("V100")
    random_search = RandomSearch(sim, scale.n_settings, seed=0)
    ga = GeneticSearch(sim, population=10, generations=5, seed=0)

    rows = []
    ratios = []
    for oc_name in OCS:
        oc = OC.parse(oc_name)
        r_times, g_times, evals = [], [], []
        for sid, s in enumerate(stencils):
            r, _ = random_search.tune_oc(s, sid, oc)
            g = ga.tune_oc(s, oc)
            if r is None or g is None:
                continue
            r_times.append(r.best_time_ms)
            g_times.append(g.best_time_ms)
            evals.append(g.evaluations)
        ratio = float(np.mean([g / r for g, r in zip(g_times, r_times)]))
        ratios.append(ratio)
        rows.append([oc_name, float(np.mean(r_times)), float(np.mean(g_times)),
                     ratio, int(np.mean(evals))])
    print_table(
        "Ablation: search strategy (V100, 8 random 2-D stencils)",
        ["OC", "refined random (ms)", "genetic (ms)", "GA/random (x)",
         "GA evals"],
        rows,
    )

    # Both strategies land in the same ballpark; neither dominates by an
    # order of magnitude.
    assert all(0.5 < r < 2.0 for r in ratios)

    benchmark.pedantic(
        lambda: ga.tune_oc(stencils[0], OC.parse("ST")), rounds=1, iterations=1
    )
