"""Ablation: parameter-search strategies at equal measurement budget.

The paper's profiling uses random search; the authors' csTuner [25] uses
a re-designed genetic algorithm.  The first bench compares those two at
comparable budgets through the legacy interfaces.  The second runs the
whole ``repro.tuning`` strategy zoo through the unified ``tune()`` front
door at an equal fidelity-weighted budget and asserts that informed
strategies beat the random baseline on best-time-found.  The third
measures the persistent tuning cache's cold-vs-warm replay speedup over
the parallel dispatch substrate.
"""

import numpy as np

from repro.gpu import GPUSimulator
from repro.optimizations import OC
from repro.profiling import RandomSearch
from repro.tuning import GeneticSearch
from repro.tuning.bench import run_cache_bench, run_strategy_bench
from repro.stencil import generate_population

from conftest import print_table

OCS = ("ST", "ST_RT", "ST_CM_RT_TB")


def test_ablation_search_strategy(scale, benchmark):
    stencils = generate_population(2, 8, seed=55)
    sim = GPUSimulator("V100")
    random_search = RandomSearch(sim, scale.n_settings, seed=0)
    ga = GeneticSearch(sim, population=10, generations=5, seed=0)

    rows = []
    ratios = []
    for oc_name in OCS:
        oc = OC.parse(oc_name)
        r_times, g_times, evals = [], [], []
        for sid, s in enumerate(stencils):
            r, _ = random_search.tune_oc(s, sid, oc)
            g = ga.tune_oc(s, oc)
            if r is None or g is None:
                continue
            r_times.append(r.best_time_ms)
            g_times.append(g.best_time_ms)
            evals.append(g.evaluations)
        ratio = float(np.mean([g / r for g, r in zip(g_times, r_times)]))
        ratios.append(ratio)
        rows.append([oc_name, float(np.mean(r_times)), float(np.mean(g_times)),
                     ratio, int(np.mean(evals))])
    print_table(
        "Ablation: search strategy (V100, 8 random 2-D stencils)",
        ["OC", "refined random (ms)", "genetic (ms)", "GA/random (x)",
         "GA evals"],
        rows,
    )

    # Both strategies land in the same ballpark; neither dominates by an
    # order of magnitude.
    assert all(0.5 < r < 2.0 for r in ratios)

    benchmark.pedantic(
        lambda: ga.tune_oc(stencils[0], OC.parse("ST")), rounds=1, iterations=1
    )


def test_strategy_zoo_equal_budget(scale, benchmark):
    quick = scale.name == "small"
    doc = run_strategy_bench(quick=quick)

    rows = [
        [
            name,
            row["geomean_vs_random"],
            "yes" if row["beats_random"] else "no",
            row["mean_trials"],
            row["mean_cost"],
            row["wall_s"],
        ]
        for name, row in sorted(
            doc["strategies"].items(),
            key=lambda kv: kv[1]["geomean_vs_random"],
        )
    ]
    print_table(
        f"Strategy zoo at equal budget ({doc['budget']} evals, "
        f"{doc['n_stencils']} stencils x {len(doc['ocs'])} OCs x "
        f"{'+'.join(doc['gpus'])})",
        ["strategy", "geomean vs random", "beats", "trials", "cost", "wall (s)"],
        rows,
    )

    # Every strategy solves every cell and respects the budget (halving
    # spends its allowance on cheap low-fidelity trials, so its trial
    # count is the one allowed above the budget).
    n_cells = doc["n_stencils"] * len(doc["ocs"]) * len(doc["gpus"])
    for name, row in doc["strategies"].items():
        assert row["cells_solved"] == n_cells, name
        if name != "halving":
            assert row["mean_trials"] <= doc["budget"] + 4, name

    # The point of the zoo: informed search beats random sampling at
    # equal spend.  At least three of the new strategies must win.
    winners = [
        name
        for name, row in doc["strategies"].items()
        if name != doc["baseline"] and row["beats_random"]
    ]
    assert len(winners) >= 3, winners

    benchmark.pedantic(
        lambda: run_strategy_bench(quick=True), rounds=1, iterations=1
    )


def test_tuning_cache_replay_speedup(scale):
    quick = scale.name == "small"
    doc = run_cache_bench(quick=quick)

    print_table(
        f"Persistent tuning cache ({doc['substrate']}, {doc['cells']} "
        f"cells, budget {doc['budget']})",
        ["phase", "wall (s)", "hits", "misses"],
        [
            ["cold", doc["cold_s"], doc["cold"]["hits"], doc["cold"]["misses"]],
            ["warm", doc["warm_s"], doc["warm"]["hits"], doc["warm"]["misses"]],
        ],
    )

    # The warm replay never consults the substrate...
    assert doc["cold"]["hits"] == 0
    assert doc["warm"]["misses"] == 0
    assert doc["warm"]["hits"] == doc["cold"]["misses"]
    # ...and repeated tune() against the warm cache is >= 5x faster.
    assert doc["speedup"] >= 5.0, doc
