"""Shared machinery for the Fig. 10/11 speedup benches.

The evaluation protocol: hold out the tail of the random population, train
the selector on the rest, then tune each held-out stencil three ways --
StencilMART (predicted OC only), the baseline, and the exhaustive oracle --
with the same per-OC random budget.
"""

from __future__ import annotations

import numpy as np

from repro.core import StencilMART
from repro.ml import ConvNetClassifier, GBDTClassifier
from repro.optimizations import OC_BY_NAME
from repro.profiling import RandomSearch
from repro.gpu import GPUSimulator

#: Held-out stencils per dimensionality (kept small: each costs several
#: tuner invocations per GPU).
HOLDOUT = {2: 10, 3: 6}


def predicted_oc_times(
    mart: StencilMART, gpu: str, method: str, epochs: int
) -> "tuple[list, list[float]]":
    """Train on the head split, tune held-out stencils with predicted OCs."""
    n_hold = HOLDOUT[mart.ndim]
    ds = mart.classification_dataset(gpu)
    train = np.arange(ds.n_samples - n_hold)
    hold = np.arange(ds.n_samples - n_hold, ds.n_samples)

    if method == "gbdt":
        model = GBDTClassifier(
            n_rounds=60, learning_rate=0.15, max_depth=3, subsample=0.8, seed=mart.seed
        )
        model.fit(ds.features[train], ds.labels[train])
        classes = model.predict(ds.features[hold])
    else:
        model = ConvNetClassifier(
            n_classes=mart.n_classes, epochs=epochs, seed=mart.seed
        )
        model.fit(ds.tensors[train], ds.labels[train])
        classes = model.predict(ds.tensors[hold])

    search = RandomSearch(
        GPUSimulator(gpu, sigma=mart.sigma), mart.n_settings, mart.seed
    )
    stencils = [mart.campaign.stencils[i] for i in hold]
    times: list[float] = []
    for s, cls in zip(stencils, classes):
        oc = OC_BY_NAME[mart.grouping.representatives[int(cls)]]
        result, _ = search.tune_oc(s, -1, oc)
        if result is None:
            # Fall back through class representatives until one runs.
            for rep in mart.grouping.representatives:
                result, _ = search.tune_oc(s, -1, OC_BY_NAME[rep])
                if result is not None:
                    break
        times.append(result.best_time_ms)
    return stencils, times


def geomean(ratios: "list[float]") -> float:
    return float(np.exp(np.mean(np.log(ratios))))
