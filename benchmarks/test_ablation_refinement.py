"""Ablation: coordinate-descent refinement in the random search.

DESIGN.md documents refinement as the reproduction's answer to
best-of-N variance: without it, per-OC optima depend on sampling luck and
best-OC labels stop being functions of the stencil.  This bench quantifies
both effects: found-time quality and label stability across search seeds.
"""

import numpy as np

from repro.gpu import GPUSimulator
from repro.optimizations import ALL_OCS
from repro.profiling import RandomSearch
from repro.stencil import generate_population

from conftest import print_table


def _best_oc(search, stencil, sid):
    best = None
    for oc in ALL_OCS:
        r, _ = search.tune_oc(stencil, sid, oc)
        if r is not None and (best is None or r.best_time_ms < best[0]):
            best = (r.best_time_ms, oc.name)
    return best


def test_ablation_refinement(scale, benchmark):
    stencils = generate_population(2, 12, seed=42)
    sim = GPUSimulator("V100")
    quality = {True: [], False: []}
    stability = {True: [], False: []}
    for refine in (True, False):
        labels_by_seed = []
        for seed in (0, 1):
            search = RandomSearch(sim, scale.n_settings, seed=seed, refine=refine)
            labels = []
            for sid, s in enumerate(stencils):
                t, name = _best_oc(search, s, sid)
                labels.append(name)
                if seed == 0:
                    quality[refine].append(t)
            labels_by_seed.append(labels)
        agree = np.mean(
            [a == b for a, b in zip(labels_by_seed[0], labels_by_seed[1])]
        )
        stability[refine] = float(agree)

    ratio = [a / b for a, b in zip(quality[False], quality[True])]
    print_table(
        "Ablation: search refinement (V100, 12 random 2-D stencils)",
        ["variant", "label agreement across seeds", "best-time vs refined (x)"],
        [
            ["refined (default)", stability[True], 1.0],
            ["pure random", stability[False], float(np.mean(ratio))],
        ],
    )

    # Refinement must find times at least as good and stabilize labels.
    assert np.mean(ratio) >= 0.999
    assert stability[True] >= stability[False]

    search = RandomSearch(sim, scale.n_settings, seed=0)
    benchmark.pedantic(
        lambda: search.tune_oc(stencils[0], 0, ALL_OCS[1]), rounds=1, iterations=1
    )
