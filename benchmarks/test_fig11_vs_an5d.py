"""Fig. 11: speedup of ConvNet- and GBDT-selected OCs over AN5D.

Paper: ConvNet averages 1.33x (2-D) and 1.09x (3-D) over AN5D's fixed
streaming + temporal-blocking strategy.
"""

from repro.baselines import AN5DBaseline

from _speedup_common import geomean, predicted_oc_times
from conftest import print_table


def test_fig11_vs_an5d(mart_2d, mart_3d, scale, benchmark):
    rows = []
    all_ratios = {m: [] for m in ("gbdt", "convnet")}
    for ndim, mart in ((2, mart_2d), (3, mart_3d)):
        for gpu in mart.gpus:
            stencils, _ = predicted_oc_times(mart, gpu, "gbdt", scale.nn_epochs)
            an5d = AN5DBaseline(gpu, mart.n_settings, mart.seed, sigma=mart.sigma)
            base_times = [an5d.tune(s)[2] for s in stencils]
            speedups = {}
            for method in ("gbdt", "convnet"):
                _, times = predicted_oc_times(mart, gpu, method, scale.nn_epochs)
                ratios = [b / t for b, t in zip(base_times, times)]
                speedups[method] = geomean(ratios)
                all_ratios[method].extend(ratios)
            rows.append([f"{ndim}D", gpu, speedups["convnet"], speedups["gbdt"]])
    print_table(
        "Fig. 11: speedup over AN5D (geometric mean, held-out stencils)",
        ["dims", "GPU", "ConvNet", "GBDT"],
        rows,
    )
    overall = {m: geomean(all_ratios[m]) for m in all_ratios}
    print(f"\n  overall: ConvNet {overall['convnet']:.2f}x, GBDT "
          f"{overall['gbdt']:.2f}x  (paper: 1.33x/1.09x ConvNet)")

    # AN5D's fixed strategy is strong; prediction must stay competitive
    # and win where the fixed strategy misfits the stencil.
    assert overall["gbdt"] > 0.85
    assert overall["convnet"] > 0.80

    benchmark.pedantic(
        lambda: AN5DBaseline("V100", 4, 0).tune(mart_2d.campaign.stencils[0]),
        rounds=1,
        iterations=1,
    )
