"""Tables III and IV: the evaluation GPUs and host machines."""

from repro.gpu import GPU_ORDER, GPUS, MACHINES, hardware_features

from conftest import print_table


def test_table3_gpus(benchmark):
    rows = []
    for name in ("P100", "V100", "2080Ti", "A100"):
        g = GPUS[name]
        rows.append(
            [
                g.name,
                g.generation,
                f"{g.memory_gb} GB",
                f"{g.mem_bw_gbs:,.0f} GB/s",
                g.sms,
                g.fp64_tflops,
                f"${g.rental_per_hour:.2f}/hr" if g.rental_per_hour else "-",
            ]
        )
    print_table(
        "Table III: GPUs used for evaluation",
        ["GPU", "Generation", "Mem.", "Mem. BW", "SMs", "TFLOPS", "Rental"],
        rows,
    )
    print_table(
        "Table IV: machines used for evaluation",
        ["CPU", "Frequency", "Cores", "Main Mem.", "GPU"],
        [
            [m.cpu, f"{m.frequency_ghz} GHz", m.cores, f"{m.main_memory_gb} GB",
             ", ".join(m.gpus)]
            for m in MACHINES
        ],
    )
    feats = benchmark(hardware_features, "A100")
    assert feats == (40.0, 1555.0, 108.0, 9.7)
    assert len(GPU_ORDER) == 4 and len(MACHINES) == 2
