"""Serving robustness under chaos: the availability bar.

The hardened service's claim (ISSUE 6) is that overload, corrupt
publishes, torn tags, and poisoned models degrade answers -- they never
break them. This runs the scripted chaos scenario from
``repro.serve.chaos`` (the same one ``tools/bench_serve_chaos.py``
records into ``BENCH_serve.json``) and asserts the acceptance bar:
zero non-503 errors, every admitted request answered, the breaker pins
the last good model and recovers, and the degraded swap rolls back.
"""

import tempfile

from repro.serve.bench import train_bench_artifacts
from repro.serve.chaos import ChaosConfig, chaos_passed, run_chaos

from conftest import print_table


def test_serve_chaos(benchmark):
    selector, predictor = train_bench_artifacts(quick=True, seed=7)
    cfg = ChaosConfig.make(quick=False, seed=7)
    with tempfile.TemporaryDirectory() as workdir:
        report = run_chaos(selector, predictor, cfg, workdir)

    t = report["totals"]
    rows = [
        [name, phase["requests"], phase["ok"], phase["shed"],
         phase["deadline"], phase["error"] + phase["client_error"]]
        for name, phase in report["phases"].items()
    ]
    rows.append(
        ["total", t["requests"], t["ok"], t["shed"], t["deadline"],
         t["error"] + t["client_error"]]
    )
    print_table(
        f"Serve chaos (availability {report['availability']:.4f}, "
        f"p99 under overload {report['p99_under_overload_ms']:.1f} ms)",
        ["phase", "requests", "ok", "shed", "deadline", "errors"],
        rows,
    )

    # The robustness acceptance bar (ISSUE 6): every scripted invariant
    # holds -- chaos_passed enumerates any violation by name.
    assert chaos_passed(report) == []
    # Spelled out so a regression names the broken property directly:
    # overload sheds cleanly (503-class only)...
    assert report["non_503_errors"] == 0
    assert report["availability_excluding_shed"] == 1.0
    assert report["availability"] >= 0.5
    assert t["shed"] + t["deadline"] >= 1
    # ...the breaker pins the last good model and recovers...
    b = report["breaker"]
    assert b["opened"] and b["pinned_last_good"] and b["recovered"]
    assert b["final_state"] == "closed"
    # ...and the poisoned swap rolled back with the bad version kept out.
    assert report["reload"]["rollbacks"] >= 1
    assert report["reload"]["rejected"]
    assert report["zero_failed_during_swap"] is True

    # Representative timing unit: a light-traffic pass through a warm
    # hardened service (admission accounting on the hot path).
    from repro.serve import AdmissionPolicy, PredictionService
    from repro.serve.chaos import _drive, _Outcomes
    from repro.stencil.generator import generate_population

    service = PredictionService(
        admission=AdmissionPolicy(max_queue=cfg.max_queue)
    )
    service.install(selector, "sel@bench")
    service.install(predictor, "pred@bench")
    stencils = generate_population(
        cfg.ndim, cfg.n_stencils, max_order=selector.max_order,
        seed=cfg.seed + 7,
    )
    _drive(service, stencils, cfg.light_requests, cfg, _Outcomes())  # warm
    benchmark(
        _drive, service, stencils, cfg.light_requests, cfg, _Outcomes()
    )
