"""Fig. 2: number of stencils for which each OC is best, per GPU.

Paper observations: streaming OCs win for most stencils; temporal blocking
without streaming never wins; the distribution is relatively even (no
single OC fits all).
"""

from collections import Counter

from repro.profiling import RandomSearch
from repro.gpu import GPUSimulator
from repro.optimizations import OC
from repro.stencil import get

from conftest import print_table


def test_fig02_best_oc_distribution(motivation_2d, motivation_3d, benchmark):
    wins: dict[str, Counter] = {}
    for campaign in (motivation_2d, motivation_3d):
        for gpu in campaign.gpus:
            wins.setdefault(gpu, Counter()).update(campaign.best_oc_labels(gpu))

    all_ocs = sorted({oc for c in wins.values() for oc in c})
    rows = [[oc] + [wins[g].get(oc, 0) for g in wins] for oc in all_ocs]
    print_table(
        "Fig. 2: stencil count where each OC is best (named stencils)",
        ["OC"] + list(wins),
        rows,
    )

    total = sum(sum(c.values()) for c in wins.values())
    streaming = sum(
        n for c in wins.values() for oc, n in c.items() if "ST" in oc.split("_")
    )
    tb_no_st = sum(
        n
        for c in wins.values()
        for oc, n in c.items()
        if "TB" in oc.split("_") and "ST" not in oc.split("_")
    )
    print(f"\n  streaming-OC wins: {streaming}/{total} ({streaming / total:.0%})")
    print(f"  TB-without-ST wins: {tb_no_st}/{total} ({tb_no_st / total:.0%}; paper: 0)")

    # Streaming dominates; best OC varies (no single OC fits all).
    assert streaming / total > 0.5
    assert tb_no_st / total < 0.4
    for gpu, counter in wins.items():
        assert len(counter) >= 3, f"{gpu}: best OC should vary across stencils"

    # Representative unit: tuning one OC for one stencil.
    search = RandomSearch(GPUSimulator("V100"), 4, seed=0)
    benchmark(search.tune_oc, get("star2d1r"), 0, OC.parse("ST"))
