"""Fig. 4: best-OC performance per GPU normalized to the 2080Ti.

Paper observations: stencil performance is not proportional to SM count;
the A100 is not always fastest (box3d3r/box3d4r run best on V100);
cost-efficiency can favour a different GPU entirely.

Documented deviation: the paper reports near-parity between the 2080Ti and
V100 on some low-order 2-D stencils; our simulated 2080Ti is FP64-bound
(0.41 TFLOPS), so all other GPUs beat it consistently (see EXPERIMENTS.md).
"""

from repro.gpu import GPU_ORDER, GPUSimulator
from repro.optimizations import OC, default_setting
from repro.stencil import get

from conftest import print_table


def test_fig04_cross_arch(motivation_2d, motivation_3d, benchmark):
    rows = []
    inversions = []
    a100_losses = 0
    for campaign in (motivation_2d, motivation_3d):
        for i, s in enumerate(campaign.stencils):
            times = {g: campaign.profiles[g][i].best_time_ms for g in GPU_ORDER}
            base = times["2080Ti"]
            norm = {g: base / times[g] for g in GPU_ORDER}
            rows.append([s.name] + [norm[g] for g in GPU_ORDER])
            if norm["V100"] > norm["A100"]:
                inversions.append(s.name)
            if min(times, key=times.get) != "A100":
                a100_losses += 1
    print_table(
        "Fig. 4: best performance normalized to 2080Ti",
        ["stencil"] + list(GPU_ORDER),
        rows,
    )
    print(f"\n  stencils where V100 beats A100: {inversions}")
    print(f"  stencils where A100 is not fastest: {a100_losses}/{len(rows)}")

    # The headline observations must hold.
    assert inversions, "expected at least one V100 > A100 inversion"
    assert a100_losses >= 1, "the most 'powerful' GPU must not always win"
    # P100 (56 SMs) vs V100 (80 SMs): speedup is sublinear in SM count for
    # memory-bound stencils -- "performance is not proportional to cores".
    p100_vs_v100 = [r[2] / r[3] for r in rows]
    assert max(p100_vs_v100) > 56 / 80

    benchmark(
        GPUSimulator("A100").time, get("star3d1r"), OC.parse("naive"), default_setting()
    )
