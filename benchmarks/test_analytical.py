"""Analytical performance model: the selection + fidelity bars.

The static metric-extraction pipeline's claim (ISSUE 8) is that a
roofline composition over source-extracted metrics carries real signal:
statically autotuning candidate OCs with it beats the heuristic ladder
on held-out stencils, and feeding its metric columns to the GBDT
regressor (the hybrid method) does not cost runtime correlation.  This
runs the same benches ``tools/bench_analytical.py`` records into
``BENCH_analytical.json`` (at the quick shape) and asserts the
acceptance bars.
"""

from repro.analysis.bench import (
    make_campaigns,
    run_regression_bench,
    run_selection_bench,
)

from conftest import print_table

SEED = 29


def test_analytical_selection_and_fidelity(benchmark):
    train, test = make_campaigns(quick=True, seed=SEED)

    sel = run_selection_bench(train, test, seed=SEED, quick=True)
    rows = [
        [name, row["top1"], row["near_optimal"], row["geomean_slowdown"]]
        for name, row in sel["selectors"].items()
    ]
    print_table(
        f"OC selection on {sel['n_test_stencils']} held-out stencils "
        f"({len(sel['ocs'])} candidate OCs)",
        ["selector", "top-1", "near-opt", "geomean slowdown"],
        rows,
    )

    reg = run_regression_bench(train, test, seed=SEED)
    print_table(
        "Held-out runtime fidelity",
        ["predictor", "PCC", "log-PCC"],
        [
            [name, row["pcc"], row["log_pcc"]]
            for name, row in reg["predictors"].items()
        ],
    )

    ana = sel["selectors"]["analytical"]
    heur = sel["selectors"]["heuristic-ladder"]
    # The selection bar: static autotuning with the analytical model
    # must beat the zero-knowledge heuristic ladder on every axis.
    assert ana["top1"] > heur["top1"]
    assert ana["near_optimal"] >= heur["near_optimal"]
    assert ana["geomean_slowdown"] < heur["geomean_slowdown"]

    # The fidelity bar: the hybrid regressor (GBDT + analytical metric
    # columns) must not trail the plain GBDT's runtime PCC, and the raw
    # static estimate alone must be strongly rank-correlated.
    preds = reg["predictors"]
    assert preds["hybrid"]["pcc"] >= preds["gbr"]["pcc"]
    assert preds["analytical"]["log_pcc"] >= 0.9

    # Timing anchor: one memoized re-selection (the serving-path cost).
    stencil = test.stencils[0]
    from repro.ml import AnalyticalSelector

    cached = AnalyticalSelector(n_settings=1)
    cached.select(stencil, "V100")  # warm the memo
    benchmark.pedantic(
        lambda: cached.select(stencil, "V100"), rounds=1, iterations=1
    )
