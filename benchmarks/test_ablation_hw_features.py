"""Ablation: GPU hardware features in the cross-architecture regressor.

Section IV-E attaches memory capacity/bandwidth, SM count and peak FLOPS
to every regression input.  Training one pooled model over all four GPUs
with and without those four features quantifies their contribution: without
them the model cannot tell architectures apart and its pooled error should
degrade markedly.
"""

import numpy as np

from repro.ml import GBRegressor, LogTimeTransform, mape
from repro.profiling import kfold_indices
from repro.profiling.dataset import N_HW_FEATURES

from conftest import print_table


def test_ablation_hw_features(mart_2d, scale, benchmark):
    ds = mart_2d.regression_dataset()  # all four GPUs pooled
    idx = mart_2d._row_subset(ds.n_samples, 6000)
    X_full = ds.features[idx]
    X_nohw = X_full[:, :-N_HW_FEATURES]
    y = ds.times_ms[idx]

    def cv(X):
        errs = []
        for tr, te in kfold_indices(X.shape[0], scale.n_folds, 0):
            m = GBRegressor(
                n_rounds=scale.gbdt_rounds, learning_rate=0.15, max_depth=6, seed=0
            ).fit(X[tr], LogTimeTransform.forward(y[tr]))
            errs.append(mape(y[te], LogTimeTransform.inverse(m.predict(X[te]))))
        return float(np.mean(errs))

    with_hw = cv(X_full)
    without_hw = cv(X_nohw)
    print_table(
        "Ablation: hardware features in the pooled cross-GPU regressor",
        ["variant", "MAPE %"],
        [["with hw features", with_hw], ["without hw features", without_hw]],
    )
    assert with_hw < without_hw, "hardware features must carry signal"

    benchmark.pedantic(
        lambda: GBRegressor(n_rounds=10, seed=0).fit(
            X_full[:1000], LogTimeTransform.forward(y[:1000])
        ),
        rounds=1,
        iterations=1,
    )
