"""Fig. 12: test error (MAPE) of ConvMLP, MLP and GBRegressor per GPU.

Paper: all mechanisms predict accurately; MLP is best with 6.2% (2-D) and
5.3% (3-D), GBRegressor 9.5%/6.3%, ConvMLP 13.4%/11.6%.  Our CPU-only
training caps the number of instances per fold, so absolute MAPE is higher
at small scale (the error decreases steadily with ``REPRO_SCALE``).
"""

import numpy as np

from repro.ml import GBRegressor

from conftest import print_table

#: Instance cap per (GPU, dims) evaluation; keeps CPU training tractable.
MAX_ROWS = {"smoke": 1500, "small": 5000, "medium": 12000, "paper": 40000}


def test_fig12_regression(mart_2d, mart_3d, scale, benchmark):
    max_rows = MAX_ROWS.get(scale.name, 5000)
    rows = []
    means = {m: [] for m in ("convmlp", "mlp", "gbr")}
    for ndim, mart in ((2, mart_2d), (3, mart_3d)):
        for gpu in mart.gpus:
            mapes = {}
            mapes["mlp"] = mart.evaluate_predictor(
                "mlp", gpu, n_folds=scale.n_folds, max_rows=max_rows,
                epochs=scale.nn_epochs, batch_size=64, lr=2e-3,
            ).mape
            mapes["convmlp"] = mart.evaluate_predictor(
                "convmlp", gpu, n_folds=scale.n_folds,
                max_rows=min(max_rows, 3000),
                epochs=max(scale.nn_epochs // 2, 5), batch_size=64,
            ).mape
            mapes["gbr"] = mart.evaluate_predictor(
                "gbr", gpu, n_folds=scale.n_folds, max_rows=max_rows,
                n_rounds=scale.gbdt_rounds, max_depth=6,
            ).mape
            rows.append(
                [f"{ndim}D", gpu, mapes["convmlp"], mapes["mlp"], mapes["gbr"]]
            )
            for m in means:
                means[m].append(mapes[m])
    print_table(
        "Fig. 12: regression test error (MAPE %, k-fold)",
        ["dims", "GPU", "ConvMLP", "MLP", "GBRegressor"],
        rows,
    )
    for m, vals in means.items():
        print(f"  mean {m}: {np.mean(vals):.1f}%")
    print("  (paper: MLP 6.2/5.3%, GBRegressor 9.5/6.3%, ConvMLP 13.4/11.6%)")

    # All mechanisms must be far better than a mean-time predictor and in a
    # usable range; this loosens with scale, not tightens.
    for m, vals in means.items():
        assert np.mean(vals) < 60.0, f"{m} MAPE unusable"
    assert np.mean(means["mlp"]) < 40.0
    assert np.mean(means["gbr"]) < 40.0

    ds = mart_2d.regression_dataset(("V100",))
    benchmark.pedantic(
        lambda: GBRegressor(n_rounds=10, seed=0).fit(
            ds.features[:1000], np.log2(ds.times_ms[:1000])
        ),
        rounds=1,
        iterations=1,
    )
