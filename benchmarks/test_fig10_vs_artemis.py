"""Fig. 10: speedup of ConvNet- and GBDT-selected OCs over Artemis.

Paper: ConvNet averages 1.30x (2-D) and 1.32x (3-D) over Artemis; GBDT is
slightly behind ConvNet.  Both tuners get the same per-OC random budget.
"""

from repro.baselines import ArtemisBaseline

from _speedup_common import geomean, predicted_oc_times
from conftest import print_table


def test_fig10_vs_artemis(mart_2d, mart_3d, scale, benchmark):
    rows = []
    all_ratios = {m: [] for m in ("gbdt", "convnet")}
    for ndim, mart in ((2, mart_2d), (3, mart_3d)):
        for gpu in mart.gpus:
            stencils, _ = predicted_oc_times(mart, gpu, "gbdt", scale.nn_epochs)
            artemis = ArtemisBaseline(gpu, mart.n_settings, mart.seed, sigma=mart.sigma)
            base_times = [artemis.tune(s)[2] for s in stencils]
            speedups = {}
            for method in ("gbdt", "convnet"):
                _, times = predicted_oc_times(mart, gpu, method, scale.nn_epochs)
                ratios = [b / t for b, t in zip(base_times, times)]
                speedups[method] = geomean(ratios)
                all_ratios[method].extend(ratios)
            rows.append([f"{ndim}D", gpu, speedups["convnet"], speedups["gbdt"]])
    print_table(
        "Fig. 10: speedup over Artemis (geometric mean, held-out stencils)",
        ["dims", "GPU", "ConvNet", "GBDT"],
        rows,
    )
    overall = {m: geomean(all_ratios[m]) for m in all_ratios}
    print(f"\n  overall: ConvNet {overall['convnet']:.2f}x, GBDT "
          f"{overall['gbdt']:.2f}x  (paper: 1.30x/1.32x ConvNet)")

    # The predicted OC must be competitive with Artemis's wider search:
    # never catastrophically behind, and ahead on average is the target.
    assert overall["gbdt"] > 0.85
    assert overall["convnet"] > 0.80
    # Individual mispredictions can cost several x (the paper reports
    # averages only); they must stay rare rather than absent.
    bad = sum(1 for v in all_ratios.values() for r in v if r < 0.5)
    total = sum(len(v) for v in all_ratios.values())
    assert bad / total < 0.25

    benchmark.pedantic(
        lambda: ArtemisBaseline("V100", 4, 0).tune(mart_2d.campaign.stencils[0]),
        rounds=1,
        iterations=1,
    )
