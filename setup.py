"""Legacy setup shim.

The sandbox this reproduction is developed in has no network access and no
``wheel`` package, so PEP 517 editable installs fail at ``bdist_wheel``.
``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
wherever wheel exists) installs the package from ``src/``.
"""

from setuptools import setup

setup()
