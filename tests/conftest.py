"""Repository-wide pytest configuration.

Keeps hypothesis deadlines off globally: the simulator-backed property
tests have heavy first calls (profile-cache warmup) that trip per-example
deadlines on slow CI machines.
"""

from hypothesis import settings

settings.register_profile("repro", deadline=None)
settings.load_profile("repro")
