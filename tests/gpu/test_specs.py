"""Tests for the GPU/machine spec database (Tables III/IV)."""

import pytest

from repro.gpu import (
    GPU_ORDER,
    GPUS,
    MACHINES,
    RENTAL_GPUS,
    get_gpu,
    hardware_features,
)


class TestTableIII:
    def test_four_gpus(self):
        assert set(GPU_ORDER) == {"P100", "V100", "2080Ti", "A100"}

    def test_headline_numbers_match_paper(self):
        # (mem GB, BW GB/s, SMs, TFLOPS, rental $/hr)
        expected = {
            "P100": (16, 720, 56, 5.3, 1.46),
            "V100": (32, 900, 80, 7.8, 2.48),
            "2080Ti": (11, 616, 68, 0.41, None),
            "A100": (40, 1555, 108, 9.7, 2.93),
        }
        for name, (mem, bw, sms, tflops, rent) in expected.items():
            g = get_gpu(name)
            assert g.memory_gb == mem
            assert g.mem_bw_gbs == bw
            assert g.sms == sms
            assert g.fp64_tflops == tflops
            assert g.rental_per_hour == rent

    def test_generations(self):
        assert get_gpu("P100").generation == "Pascal"
        assert get_gpu("V100").generation == "Volta"
        assert get_gpu("2080Ti").generation == "Turing"
        assert get_gpu("A100").generation == "Ampere"

    def test_rental_excludes_2080ti(self):
        assert "2080Ti" not in RENTAL_GPUS
        assert set(RENTAL_GPUS) == {"P100", "V100", "A100"}

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_gpu("H100")

    def test_derived_quantities(self):
        v = get_gpu("V100")
        assert v.peak_fp64_flops == pytest.approx(7.8e12)
        assert v.dram_bytes_per_s == pytest.approx(900e9)
        assert v.max_warps_per_sm == 64

    def test_turing_reduced_sm_limits(self):
        t = get_gpu("2080Ti")
        assert t.max_threads_per_sm == 1024
        assert t.max_blocks_per_sm == 16

    def test_describe_mentions_name(self):
        for name in GPU_ORDER:
            assert name in get_gpu(name).describe()

    def test_efficiencies_in_range(self):
        for g in GPUS.values():
            assert 0.5 <= g.compute_efficiency <= 1.0
            assert 0.5 <= g.memory_efficiency <= 1.0


class TestTableIV:
    def test_two_machines(self):
        assert len(MACHINES) == 2

    def test_machine_gpu_assignment(self):
        by_cpu = {m.cpu: m for m in MACHINES}
        assert by_cpu["Xeon Silver 4110"].gpus == ("2080Ti",)
        assert set(by_cpu["Xeon E5-2680 v4"].gpus) == {"P100", "V100", "A100"}

    def test_every_gpu_hosted(self):
        hosted = {g for m in MACHINES for g in m.gpus}
        assert hosted == set(GPU_ORDER)


class TestHardwareFeatures:
    def test_four_features(self):
        assert len(hardware_features("V100")) == 4

    def test_values(self):
        assert hardware_features("A100") == (40.0, 1555.0, 108.0, 9.7)

    def test_accepts_spec(self):
        assert hardware_features(get_gpu("P100")) == hardware_features("P100")
