"""Property-based invariants of the timing model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelLaunchError
from repro.gpu import GPUSimulator, GPU_ORDER
from repro.optimizations import ALL_OCS, OC, sample_setting
from repro.stencil import Stencil, generate_stencil, star


@settings(max_examples=80, deadline=None)
@given(
    ndim=st.sampled_from([2, 3]),
    order=st.integers(1, 4),
    seed=st.integers(0, 100_000),
    oc_idx=st.integers(0, len(ALL_OCS) - 1),
    gpu=st.sampled_from(list(GPU_ORDER)),
)
def test_time_finite_positive_or_clean_crash(ndim, order, seed, oc_idx, gpu):
    rng = np.random.default_rng(seed)
    s = generate_stencil(ndim, order, rng)
    oc = ALL_OCS[oc_idx]
    setting = sample_setting(oc, ndim, rng)
    sim = GPUSimulator(gpu)
    try:
        t = sim.time(s, oc, setting)
    except KernelLaunchError:
        return
    assert np.isfinite(t) and t > 0


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), order=st.integers(1, 4))
def test_superset_stencil_never_faster(seed, order):
    """Adding accessed points cannot speed a kernel up (same config)."""
    rng = np.random.default_rng(seed)
    base = generate_stencil(2, order, rng)
    extra = star(2, order)
    superset = Stencil(ndim=2, offsets=base.offsets | extra.offsets)
    if superset.offsets == base.offsets:
        return
    sim = GPUSimulator("V100", sigma=0)
    from repro.optimizations import default_setting

    t_base = sim.time(base, OC.parse("naive"), default_setting())
    t_super = sim.time(superset, OC.parse("naive"), default_setting())
    assert t_super >= t_base * 0.999


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_noise_bounded_multiplicative(seed):
    rng = np.random.default_rng(seed)
    s = generate_stencil(2, 2, rng)
    from repro.optimizations import default_setting

    clean = GPUSimulator("V100", sigma=0).time(s, OC.parse("naive"), default_setting())
    noisy = GPUSimulator("V100", sigma=0.03).time(
        s, OC.parse("naive"), default_setting()
    )
    assert 0.8 * clean < noisy < 1.25 * clean


def test_bandwidth_scaling_memory_bound():
    """A pure-bandwidth change scales memory-bound kernels accordingly."""
    from dataclasses import replace
    from repro.gpu.specs import get_gpu
    from repro.optimizations import default_setting

    base_spec = get_gpu("V100")
    fast_spec = replace(base_spec, mem_bw_gbs=base_spec.mem_bw_gbs * 2)
    s = star(2, 1)  # memory-bound on V100
    t_base = GPUSimulator(base_spec, sigma=0).time(
        s, OC.parse("naive"), default_setting()
    )
    t_fast = GPUSimulator(fast_spec, sigma=0).time(
        s, OC.parse("naive"), default_setting()
    )
    assert t_fast < t_base
    assert t_fast > t_base / 2.2  # sublinear: other phases remain
