"""Tests for deterministic measurement noise."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import noise_factor
from repro.gpu.noise import standard_normal


class TestDeterminism:
    def test_same_key_same_factor(self):
        assert noise_factor("V100", "a", 1) == noise_factor("V100", "a", 1)

    def test_different_key_different_factor(self):
        assert noise_factor("V100", "a") != noise_factor("A100", "a")

    def test_sigma_zero_is_identity(self):
        assert noise_factor("x", sigma=0.0) == 1.0


class TestDistribution:
    def test_factors_positive(self):
        for i in range(200):
            assert noise_factor("k", i) > 0.0

    def test_mean_near_one(self):
        vals = np.array([noise_factor("mean", i) for i in range(2000)])
        assert abs(vals.mean() - 1.0) < 0.02

    def test_spread_matches_sigma(self):
        zs = np.array([standard_normal("spread", i) for i in range(2000)])
        assert abs(zs.std() - 1.0) < 0.08
        assert abs(zs.mean()) < 0.08

    @settings(max_examples=50, deadline=None)
    @given(sigma=st.floats(0.01, 0.3), i=st.integers(0, 10_000))
    def test_bounded_by_sigma(self, sigma, i):
        f = noise_factor("b", i, sigma=sigma)
        # 6-sigma lognormal bound.
        assert np.exp(-6 * sigma) < f < np.exp(6 * sigma)
