"""Tests for the vendor abstraction layer and the AMD-class specs."""

import pytest

from repro.errors import UnknownGPUError
from repro.gpu import (
    ALL_GPU_ORDER,
    AMD_GPU_ORDER,
    GPU_ORDER,
    GPUS,
    VENDOR_INFO,
    Vendor,
    get_gpu,
    hardware_features,
    vendor_info,
)
from repro.gpu.occupancy import compute_occupancy


class TestVendorTable:
    def test_two_vendors(self):
        assert set(VENDOR_INFO) == {Vendor.NVIDIA, Vendor.AMD}

    def test_scheduling_widths(self):
        assert vendor_info(Vendor.NVIDIA).warp_size == 32
        assert vendor_info(Vendor.AMD).warp_size == 64

    def test_nvidia_constants_match_legacy_values(self):
        # These numbers were hard-coded throughout occupancy/engine code
        # before the vendor layer existed; NVIDIA bit-identity depends on
        # them never drifting.
        nv = vendor_info(Vendor.NVIDIA)
        assert nv.reg_alloc_unit == 256
        assert nv.smem_alloc_unit == 256
        assert nv.smem_banks == 32
        assert nv.smem_bytes_per_clk == 128.0
        assert nv.dialect == "cuda"

    def test_amd_dialect_and_granules(self):
        amd = vendor_info(Vendor.AMD)
        assert amd.dialect == "hip"
        assert amd.compiler == "hipcc"
        assert amd.smem_alloc_unit == 512
        assert amd.smem_banks == 32

    def test_spec_delegates_to_vendor(self):
        v100, mi100 = get_gpu("V100"), get_gpu("MI100")
        assert v100.vendor is Vendor.NVIDIA and v100.warp_size == 32
        assert mi100.vendor is Vendor.AMD and mi100.warp_size == 64
        assert mi100.dialect == "hip" and v100.dialect == "cuda"


class TestAMDSpecs:
    def test_device_lists(self):
        # GPU_ORDER stays the paper's four NVIDIA GPUs; the AMD devices
        # extend it through ALL_GPU_ORDER without disturbing any dataset
        # or artifact ordering.
        assert set(GPU_ORDER) == {"P100", "V100", "2080Ti", "A100"}
        assert AMD_GPU_ORDER == ("MI100", "MI210", "MI250")
        assert ALL_GPU_ORDER == GPU_ORDER + AMD_GPU_ORDER
        assert set(ALL_GPU_ORDER) <= set(GPUS)

    def test_headline_numbers(self):
        expected = {
            "MI100": (32, 1228.8, 120, 11.5),
            "MI210": (64, 1638.4, 104, 22.6),
            "MI250": (128, 3276.8, 208, 45.3),
        }
        for name, (mem, bw, cus, tflops) in expected.items():
            g = get_gpu(name)
            assert g.vendor is Vendor.AMD
            assert g.memory_gb == mem
            assert g.mem_bw_gbs == bw
            assert g.sms == cus
            assert g.fp64_tflops == tflops

    def test_wavefront_residency(self):
        # 2560 threads per CU at wavefront 64 = 40 resident waves.
        for name in AMD_GPU_ORDER:
            assert get_gpu(name).max_warps_per_sm == 40

    def test_hardware_features_cover_amd(self):
        for name in AMD_GPU_ORDER:
            feats = hardware_features(name)
            assert len(feats) == 4
            assert all(f > 0 for f in feats)


class TestUnknownGPUError:
    def test_is_a_keyerror(self):
        # Legacy callers catch KeyError; the descriptive error must keep
        # satisfying them.
        with pytest.raises(KeyError):
            get_gpu("H100")

    def test_message_names_known_devices(self):
        with pytest.raises(UnknownGPUError) as ei:
            get_gpu("H100")
        msg = str(ei.value)
        assert "H100" in msg
        for name in ("V100", "A100", "MI100", "MI250"):
            assert name in msg

    def test_simulator_and_engine_propagate_it(self):
        from repro.engine import ScalarBackend
        from repro.gpu.simulator import GPUSimulator

        with pytest.raises(UnknownGPUError):
            GPUSimulator("RTX9000")
        with pytest.raises(UnknownGPUError):
            ScalarBackend("RTX9000")


class TestWavefrontOccupancy:
    def test_warps_per_block_uses_wavefront_width(self):
        # 256 threads = 8 warps on NVIDIA but only 4 waves on AMD.
        nv = compute_occupancy(get_gpu("V100"), 256, 32, 0)
        amd = compute_occupancy(get_gpu("MI100"), 256, 32, 0)
        assert nv.warps_per_sm % 8 == 0
        assert amd.warps_per_sm % 4 == 0
        assert amd.warps_per_sm / amd.blocks_per_sm == 4

    def test_register_rounding_uses_wavefront_width(self):
        # regs/wave = round_up(64 * 64, 256) = 4096 on AMD; 4 waves per
        # 256-thread block -> 131072-reg file / 16384 = 8 resident
        # blocks, below both the 10-block wave limit and the block cap.
        amd = compute_occupancy(get_gpu("MI100"), 256, 64, 0)
        assert amd.limiter == "registers"
        assert amd.blocks_per_sm == 131072 // (4096 * 4)

    def test_lds_granule(self):
        # 4100 B rounds to 4608 (granule 512, not NVIDIA's 256) on AMD:
        # 65536 // 4608 = 14 blocks by LDS, the binding limit here.
        occ = compute_occupancy(get_gpu("MI100"), 64, 16, 4100)
        assert occ.limiter == "smem"
        assert occ.blocks_per_sm == 65536 // 4608

    def test_occupancy_in_unit_range(self):
        for name in AMD_GPU_ORDER:
            occ = compute_occupancy(get_gpu(name), 256, 64, 4096)
            assert 0.0 < occ.occupancy <= 1.0
