"""Tests for the analytical timing simulator.

These check *model* properties -- monotonicity, phase accounting, crash
behaviour, cross-configuration orderings -- not absolute times.
"""

import pytest

from repro.errors import KernelLaunchError
from repro.gpu import GPUSimulator, simulate
from repro.optimizations import OC, ParamSetting, default_setting
from repro.stencil import box, get, star

V100 = GPUSimulator("V100", sigma=0.0)


def t(sim, stencil, oc, **params):
    return sim.time(stencil, OC.parse(oc), ParamSetting(**params))


class TestBasics:
    def test_positive_time(self):
        assert t(V100, star(2, 1), "naive") > 0

    def test_deterministic_without_noise(self):
        a = t(V100, star(2, 1), "ST", stream_dim=2, use_smem=1)
        b = t(V100, star(2, 1), "ST", stream_dim=2, use_smem=1)
        assert a == b

    def test_noise_reproducible(self):
        s1 = GPUSimulator("V100", sigma=0.06)
        s2 = GPUSimulator("V100", sigma=0.06)
        assert t(s1, star(2, 2), "naive") == t(s2, star(2, 2), "naive")

    def test_noise_perturbs(self):
        noisy = GPUSimulator("V100", sigma=0.06)
        assert t(noisy, star(2, 2), "naive") != t(V100, star(2, 2), "naive")

    def test_simulate_convenience(self):
        v = simulate("V100", star(2, 1), OC.parse("naive"), default_setting(), sigma=0)
        assert v == pytest.approx(t(V100, star(2, 1), "naive"))

    def test_run_phases_accounted(self):
        r = V100.run(star(3, 2), OC.parse("ST"), ParamSetting(stream_dim=3, use_smem=1))
        assert r.dram_ms > 0 and r.l2_ms > 0 and r.compute_ms > 0
        assert r.stream_ms > 0  # streaming kernels pay sync stalls
        assert 0 < r.utilization <= 1
        assert 0 < r.occupancy.occupancy <= 1


class TestModelOrderings:
    def test_bigger_stencil_slower(self):
        assert t(V100, box(3, 4), "naive") > t(V100, box(3, 1), "naive")

    def test_3d_slower_than_2d_per_paper_grids(self):
        assert t(V100, star(3, 2), "naive") > t(V100, star(2, 2), "naive")

    def test_streaming_helps_high_order_3d(self):
        base = t(V100, star(3, 4), "naive")
        streamed = t(
            V100, star(3, 4), "ST", stream_dim=3, use_smem=1, stream_tiles=4
        )
        assert streamed < base

    def test_streaming_contiguous_axis_hurts(self):
        good = t(V100, star(3, 2), "ST", stream_dim=3, use_smem=1, stream_tiles=4)
        bad = t(V100, star(3, 2), "ST", stream_dim=1, use_smem=1, stream_tiles=4)
        assert bad > good

    def test_prefetch_reduces_stream_stalls(self):
        base = ParamSetting(stream_dim=3, use_smem=1, stream_tiles=1)
        no_pr = V100.run(star(3, 2), OC.parse("ST"), base)
        pr = V100.run(star(3, 2), OC.parse("ST_PR"), base)
        assert pr.stream_ms < no_pr.stream_ms

    def test_retiming_helps_high_order_not_low(self):
        setting = ParamSetting(stream_dim=3, use_smem=1, stream_tiles=2)
        high_gain = t(V100, star(3, 4), "ST", **setting) - t(
            V100, star(3, 4), "ST_RT", **setting
        )
        low_gain = t(V100, star(3, 1), "ST", **setting) - t(
            V100, star(3, 1), "ST_RT", **setting
        )
        assert high_gain > low_gain

    def test_block_merge_x_breaks_coalescing(self):
        bm_x = t(V100, star(2, 1), "BM", merge_factor=4, merge_dim=1)
        bm_y = t(V100, star(2, 1), "BM", merge_factor=4, merge_dim=2)
        assert bm_x > bm_y

    def test_cyclic_merge_x_keeps_coalescing(self):
        cm_x = t(V100, star(2, 1), "CM", merge_factor=4, merge_dim=1)
        bm_x = t(V100, star(2, 1), "BM", merge_factor=4, merge_dim=1)
        assert cm_x < bm_x

    def test_temporal_blocking_reduces_dram_time(self):
        # Phase times are per launch; a TB launch covers temporal_steps
        # sweeps, so compare per-step DRAM time.
        base = ParamSetting(stream_dim=3, use_smem=1, block_y=16)
        no_tb = V100.run(star(3, 1), OC.parse("ST"), base)
        tb = V100.run(star(3, 1), OC.parse("ST_TB"), base.replace(temporal_steps=2))
        assert tb.dram_ms / tb.profile.temporal_steps < no_tb.dram_ms


class TestCrashes:
    def test_tb_without_st_crashes_3d_order4(self):
        # The paper's crash case: no block shape keeps all three axes wider
        # than the temporal halo.
        s = box(3, 4)
        for bx in (16, 32, 64):
            for by in (1, 2, 4, 8, 16):
                for bz in (1, 2, 4, 8):
                    with pytest.raises(KernelLaunchError):
                        t(
                            V100, s, "TB",
                            block_x=bx, block_y=by, block_z=bz,
                            temporal_steps=2, use_smem=1,
                        )

    def test_tb_with_st_can_run_3d_order4(self):
        # Streaming shrinks the staged tile to a 2-D plane queue; a narrow
        # plane fits V100's shared memory where the 3-D TB tile cannot.
        v = t(
            V100, box(3, 4), "ST_TB",
            stream_dim=3, block_x=16, block_y=16,
            temporal_steps=2, use_smem=1,
        )
        assert v > 0

    def test_smem_overflow_crashes(self):
        with pytest.raises(KernelLaunchError):
            t(
                GPUSimulator("P100", sigma=0).time.__self__,
                box(3, 4), "ST",
                stream_dim=3, block_x=256, block_y=16, use_smem=1,
            )

    def test_naive_always_valid_everywhere(self):
        for gpu in ("P100", "V100", "2080Ti", "A100"):
            sim = GPUSimulator(gpu, sigma=0)
            for s in (star(2, 1), box(3, 4)):
                assert t(sim, s, "naive") > 0


class TestCrossArchitecture:
    def test_a100_fastest_on_memory_bound_3d(self):
        s = star(3, 1)
        setting = dict(stream_dim=3, use_smem=1, stream_tiles=4)
        times = {
            g: t(GPUSimulator(g, sigma=0), s, "ST", **setting)
            for g in ("P100", "V100", "A100")
        }
        assert times["A100"] < times["V100"] < times["P100"]

    def test_2080ti_slowest_on_fp64_heavy(self):
        s = box(3, 3)
        times = {
            g: t(GPUSimulator(g, sigma=0), s, "naive")
            for g in ("2080Ti", "P100", "V100", "A100")
        }
        assert times["2080Ti"] == max(times.values())

    def test_perf_not_proportional_to_sms(self):
        # A100 has 1.35x V100's SMs but does not win compute-bound
        # high-order boxes under the CUDA 10 stack (PTX JIT penalty).
        s = box(3, 4)
        setting = dict(stream_dim=3, use_smem=1, stream_tiles=4, block_y=16)
        v100 = t(GPUSimulator("V100", sigma=0), s, "ST_RT", **setting)
        a100 = t(GPUSimulator("A100", sigma=0), s, "ST_RT", **setting)
        assert v100 < a100
