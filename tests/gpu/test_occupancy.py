"""Tests for the CUDA-style occupancy calculator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelLaunchError
from repro.gpu import compute_occupancy, get_gpu

V100 = get_gpu("V100")
TURING = get_gpu("2080Ti")


class TestLimits:
    def test_block_too_large(self):
        with pytest.raises(KernelLaunchError):
            compute_occupancy(V100, 2048, 32, 0)

    def test_zero_threads(self):
        with pytest.raises(KernelLaunchError):
            compute_occupancy(V100, 0, 32, 0)

    def test_registers_over_limit(self):
        with pytest.raises(KernelLaunchError):
            compute_occupancy(V100, 128, 256, 0)

    def test_smem_over_limit(self):
        with pytest.raises(KernelLaunchError):
            compute_occupancy(V100, 128, 32, 97 * 1024)

    def test_pascal_smem_block_limit_is_48k(self):
        p100 = get_gpu("P100")
        with pytest.raises(KernelLaunchError):
            compute_occupancy(p100, 128, 32, 49 * 1024)
        assert compute_occupancy(p100, 128, 32, 48 * 1024).blocks_per_sm >= 1


class TestResidency:
    def test_full_occupancy_light_kernel(self):
        occ = compute_occupancy(V100, 256, 32, 0)
        assert occ.occupancy == pytest.approx(1.0)
        assert occ.blocks_per_sm == 8
        assert occ.limiter == "threads"

    def test_register_limited(self):
        # 128 regs * 1024 threads = 131072 > 65536: one block cannot fit
        # fully, but 512-thread blocks can -> registers limit residency.
        occ = compute_occupancy(V100, 512, 128, 0)
        assert occ.limiter == "registers"
        assert occ.blocks_per_sm == 1

    def test_smem_limited(self):
        occ = compute_occupancy(V100, 64, 32, 40 * 1024)
        assert occ.limiter == "smem"
        assert occ.blocks_per_sm == 2

    def test_block_slot_limited(self):
        occ = compute_occupancy(V100, 32, 16, 0)
        assert occ.limiter == "blocks"
        assert occ.blocks_per_sm == 32
        assert occ.occupancy == pytest.approx(0.5)

    def test_turing_half_thread_capacity(self):
        occ = compute_occupancy(TURING, 256, 32, 0)
        # 1024 threads/SM -> 4 blocks of 256.
        assert occ.blocks_per_sm == 4

    def test_zero_occupancy_raises(self):
        # A single block demanding more registers than the SM holds.
        with pytest.raises(KernelLaunchError):
            compute_occupancy(V100, 1024, 255, 0)


class TestInvariants:
    @settings(max_examples=80, deadline=None)
    @given(
        tpb=st.sampled_from([32, 64, 128, 256, 512, 1024]),
        regs=st.integers(16, 255),
        smem=st.integers(0, 96 * 1024),
    )
    def test_occupancy_in_unit_interval(self, tpb, regs, smem):
        try:
            occ = compute_occupancy(V100, tpb, regs, smem)
        except KernelLaunchError:
            return
        assert 0.0 < occ.occupancy <= 1.0
        assert occ.warps_per_sm == occ.blocks_per_sm * ((tpb + 31) // 32)

    @settings(max_examples=40, deadline=None)
    @given(tpb=st.sampled_from([64, 128, 256]), regs=st.integers(16, 128))
    def test_monotone_in_registers(self, tpb, regs):
        lo = compute_occupancy(V100, tpb, regs, 0)
        hi = compute_occupancy(V100, tpb, min(regs + 64, 255), 0)
        assert hi.blocks_per_sm <= lo.blocks_per_sm

    @settings(max_examples=40, deadline=None)
    @given(smem=st.integers(1024, 48 * 1024))
    def test_monotone_in_smem(self, smem):
        lo = compute_occupancy(V100, 128, 32, smem)
        hi = compute_occupancy(V100, 128, 32, min(smem * 2, 96 * 1024))
        assert hi.blocks_per_sm <= lo.blocks_per_sm
