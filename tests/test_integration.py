"""Cross-module integration tests: the full pipeline end to end."""

import numpy as np
import pytest

from repro import StencilMART
from repro.baselines import AN5DBaseline, ArtemisBaseline, OracleBaseline
from repro.codegen import generate_cuda
from repro.gpu import GPUSimulator
from repro.optimizations import ALL_OCS, OC
from repro.stencil import generate_population, get


@pytest.fixture(scope="module")
def pipeline():
    mart = StencilMART(ndim=2, gpus=("V100",), n_settings=4, seed=42)
    mart.build_dataset(n_stencils=16)
    return mart


class TestFullPipeline:
    def test_dataset_to_selector_to_tuning(self, pipeline):
        pipeline.fit_selector("gbdt", "V100")
        s = get("cross2d2r")
        oc, setting, t = pipeline.tune(s, "V100")
        # The tuned configuration must actually run on the simulator.
        direct = GPUSimulator("V100", sigma=pipeline.sigma).time(s, oc, setting)
        assert direct == pytest.approx(t)

    def test_predicted_config_generates_cuda(self, pipeline):
        pipeline.fit_selector("gbdt", "V100")
        s = get("box2d1r")
        oc, setting, _ = pipeline.tune(s, "V100")
        src = generate_cuda(s, oc, setting)
        assert "__global__" in src
        assert src.count("{") == src.count("}")

    def test_regressor_prediction_in_range(self, pipeline):
        pipeline.fit_predictor("gbr", max_rows=2000, n_rounds=40)
        s = pipeline.campaign.stencils[0]
        profile = pipeline.campaign.profile("V100", 0)
        oc_name = profile.best_oc
        r = profile.oc_results[oc_name]
        pred = pipeline.predict_time(s, oc_name, r.best_setting, "V100", method="gbr")
        # Within a small multiplicative band of the measurement it was
        # trained on (this config is in the training set).
        assert r.best_time_ms / 4 < pred < r.best_time_ms * 4

    def test_selector_consistent_with_grouping(self, pipeline):
        pipeline.fit_selector("gbdt", "V100")
        for s in generate_population(2, 5, seed=77):
            oc = pipeline.predict_best_oc(s, "V100")
            assert oc.name in pipeline.grouping.representatives


class TestTunerHierarchy:
    """The oracle bounds every tuner from below at equal budget."""

    @pytest.mark.parametrize("name", ["star2d1r", "box2d2r", "cross2d3r"])
    def test_oracle_is_lower_bound(self, name):
        s = get(name)
        oracle_t = OracleBaseline("V100", 4, 11).tune(s)[2]
        artemis_t = ArtemisBaseline("V100", 4, 11).tune(s)[2]
        an5d_t = AN5DBaseline("V100", 4, 11).tune(s)[2]
        assert oracle_t <= artemis_t + 1e-12
        assert oracle_t <= an5d_t + 1e-12


class TestDeterminismEndToEnd:
    def test_identical_runs_identical_results(self):
        def run():
            m = StencilMART(ndim=2, gpus=("V100",), n_settings=3, seed=4)
            m.build_dataset(n_stencils=6)
            r = m.evaluate_selector("gbdt", "V100", n_folds=2)
            return (
                tuple(m.grouping.representatives),
                tuple(m.campaign.best_oc_labels("V100")),
                r.accuracy,
            )

        assert run() == run()


class TestEveryOCEitherRunsOrCrashesCleanly:
    def test_all_ocs_well_behaved_on_all_gpus(self):
        from repro.errors import KernelLaunchError
        from repro.optimizations import sample_setting

        rng = np.random.default_rng(0)
        s = get("star3d2r")
        for gpu in ("2080Ti", "P100", "V100", "A100"):
            sim = GPUSimulator(gpu)
            for oc in ALL_OCS:
                setting = sample_setting(oc, 3, rng)
                try:
                    t = sim.time(s, oc, setting)
                except KernelLaunchError:
                    continue
                assert np.isfinite(t) and t > 0
