"""Shared fixtures: a small deterministic profiling campaign.

Campaigns are expensive enough that module-scoped fixtures matter; all
profiling tests share one small population and one two-GPU campaign.
"""

import pytest

from repro.stencil import generate_population
from repro.profiling import run_campaign


@pytest.fixture(scope="session")
def small_population():
    return generate_population(2, 12, seed=11)


@pytest.fixture(scope="session")
def small_campaign(small_population):
    return run_campaign(
        small_population, gpus=("V100", "A100"), n_settings=4, seed=3
    )


@pytest.fixture(scope="session")
def full_gpu_campaign(small_population):
    return run_campaign(small_population[:8], n_settings=4, seed=5)
