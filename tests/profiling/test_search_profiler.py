"""Tests for random search and profiling campaigns."""

import math

import pytest

from repro.errors import DatasetError
from repro.gpu import GPUSimulator
from repro.optimizations import ALL_OCS, OC
from repro.profiling import RandomSearch, run_campaign
from repro.stencil import box, generate_population, star


class TestRandomSearch:
    def test_best_is_min_of_measurements(self):
        search = RandomSearch(GPUSimulator("V100"), n_settings=6, seed=0)
        result, ms = search.tune_oc(star(2, 1), 0, OC.parse("ST"))
        assert result is not None
        assert result.best_time_ms == min(m.time_ms for m in ms)
        # Refinement appends its evaluations, so the measurement count
        # exceeds the random budget.
        assert result.n_settings == len(ms) >= 6

    def test_refinement_improves_or_matches_sampling(self):
        refined = RandomSearch(GPUSimulator("V100"), 6, seed=0)
        raw = RandomSearch(GPUSimulator("V100"), 6, seed=0, refine=False)
        s = star(3, 2)
        r_ref, _ = refined.tune_oc(s, 0, OC.parse("ST_RT"))
        r_raw, _ = raw.tune_oc(s, 0, OC.parse("ST_RT"))
        assert r_ref.best_time_ms <= r_raw.best_time_ms

    def test_refined_optimum_stable_across_seeds(self):
        s = star(2, 2)
        times = []
        for seed in (0, 1, 2):
            search = RandomSearch(GPUSimulator("V100"), 8, seed=seed)
            r, _ = search.tune_oc(s, 0, OC.parse("ST_RT"))
            times.append(r.best_time_ms)
        spread = (max(times) - min(times)) / min(times)
        assert spread < 0.10

    def test_deterministic(self):
        a = RandomSearch(GPUSimulator("V100"), 5, seed=1).tune_oc(
            star(2, 2), 0, OC.parse("BM")
        )
        b = RandomSearch(GPUSimulator("V100"), 5, seed=1).tune_oc(
            star(2, 2), 0, OC.parse("BM")
        )
        assert a[0].best_time_ms == b[0].best_time_ms
        assert a[0].best_setting == b[0].best_setting

    def test_crashing_oc_returns_none(self):
        # TB without ST cannot run on 3-D order-4 stencils (temporal halo).
        search = RandomSearch(GPUSimulator("V100"), n_settings=6, seed=0)
        result, ms = search.tune_oc(box(3, 4), 0, OC.parse("TB"))
        assert result is None and ms == []

    def test_crash_counter(self):
        search = RandomSearch(GPUSimulator("P100"), n_settings=8, seed=0)
        result, _ = search.tune_oc(box(3, 3), 0, OC.parse("ST_TB"))
        # P100's 48 KB/block limit rejects many plane-queue settings.
        assert result is None or result.crashed > 0

    def test_profile_stencil_covers_valid_ocs(self):
        search = RandomSearch(GPUSimulator("V100"), n_settings=4, seed=0)
        p = search.profile_stencil(star(2, 1), 0)
        assert len(p.oc_results) >= 25
        assert p.best_oc in p.oc_results
        assert p.best_time_ms == min(r.best_time_ms for r in p.oc_results.values())

    def test_time_of_missing_oc_is_inf(self):
        search = RandomSearch(GPUSimulator("V100"), n_settings=4, seed=0)
        p = search.profile_stencil(box(3, 4), 0)
        assert math.isinf(p.time_of("TB"))


class TestCampaign:
    def test_structure(self, small_campaign, small_population):
        assert set(small_campaign.profiles) == {"V100", "A100"}
        assert len(small_campaign.profiles["V100"]) == len(small_population)
        assert small_campaign.ndim == 2

    def test_measurements_nonempty(self, small_campaign):
        ms = small_campaign.measurements("V100")
        assert len(ms) > 100
        assert all(m.gpu == "V100" for m in ms)

    def test_best_labels_are_oc_names(self, small_campaign):
        names = {oc.name for oc in ALL_OCS}
        for label in small_campaign.best_oc_labels("A100"):
            assert label in names

    def test_rejects_empty_population(self):
        with pytest.raises(DatasetError):
            run_campaign([], gpus=("V100",))

    def test_rejects_mixed_ndim(self):
        pop = generate_population(2, 2, seed=0) + generate_population(3, 2, seed=0)
        with pytest.raises(DatasetError):
            run_campaign(pop, gpus=("V100",))

    def test_deterministic_across_runs(self, small_population):
        a = run_campaign(small_population[:3], gpus=("V100",), n_settings=3, seed=9)
        b = run_campaign(small_population[:3], gpus=("V100",), n_settings=3, seed=9)
        for pa, pb in zip(a.profiles["V100"], b.profiles["V100"]):
            assert pa.best_oc == pb.best_oc
            assert pa.best_time_ms == pb.best_time_ms

    def test_streaming_ocs_dominate_best_on_datacenter_gpus(self, full_gpu_campaign):
        # Paper Fig. 2: "the OCs with streaming perform better for most
        # stencils".  Restricted to P100/V100 here: the simulated 2080Ti is
        # FP64-compute-bound (all OCs flat) and the A100's 40 MB L2 makes
        # cache-served schemes competitive, both documented deviations.
        best = []
        for gpu in ("P100", "V100"):
            best += full_gpu_campaign.best_oc_labels(gpu)
        streaming = sum(1 for b in best if "ST" in b.split("_"))
        assert streaming / len(best) > 0.5

    def test_tb_without_st_rarely_best(self, full_gpu_campaign):
        # Paper Fig. 2 reports zero wins for TB without ST; our substrate
        # allows occasional wins (see EXPERIMENTS.md), but they must stay a
        # clear minority.
        labels = []
        for gpu in full_gpu_campaign.gpus:
            labels += full_gpu_campaign.best_oc_labels(gpu)
        tb_no_st = sum(
            1
            for label in labels
            if "TB" in label.split("_") and "ST" not in label.split("_")
        )
        assert tb_no_st / len(labels) < 0.4

    def test_best_oc_varies_across_stencils(self, full_gpu_campaign):
        # "There is no single OC fits for all."
        for gpu in full_gpu_campaign.gpus:
            assert len(set(full_gpu_campaign.best_oc_labels(gpu))) >= 3
