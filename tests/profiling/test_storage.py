"""Round-trip tests for campaign persistence."""

import json

import pytest

from repro.errors import DatasetError
from repro.profiling import load_campaign, save_campaign
from repro.profiling.storage import (
    campaign_from_dict,
    campaign_to_dict,
    stencil_from_dict,
    stencil_to_dict,
)
from repro.stencil import box, star


class TestStencilRoundTrip:
    def test_round_trip(self):
        s = box(3, 2)
        assert stencil_from_dict(stencil_to_dict(s)) == s

    def test_name_preserved(self):
        s = star(2, 1)
        assert stencil_from_dict(stencil_to_dict(s)).name == "star2d1r"

    def test_malformed_raises(self):
        with pytest.raises(DatasetError):
            stencil_from_dict({"ndim": 2})


class TestCampaignRoundTrip:
    def test_full_round_trip(self, small_campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(small_campaign, path)
        loaded = load_campaign(path)

        assert loaded.gpus == small_campaign.gpus
        assert loaded.n_settings == small_campaign.n_settings
        assert len(loaded.stencils) == len(small_campaign.stencils)
        for gpu in small_campaign.gpus:
            for a, b in zip(loaded.profiles[gpu], small_campaign.profiles[gpu]):
                assert a.best_oc == b.best_oc
                assert a.best_time_ms == b.best_time_ms
                assert len(a.measurements) == len(b.measurements)
                assert a.measurements[0].setting == b.measurements[0].setting

    def test_document_is_json(self, small_campaign, tmp_path):
        path = tmp_path / "c.json"
        save_campaign(small_campaign, path)
        doc = json.loads(path.read_text())
        assert doc["format"] == 1
        assert set(doc["profiles"]) == set(small_campaign.gpus)

    def test_downstream_merge_identical(self, small_campaign, tmp_path):
        from repro.profiling import merge_ocs

        path = tmp_path / "c.json"
        save_campaign(small_campaign, path)
        loaded = load_campaign(path)
        a = merge_ocs(small_campaign, n_classes=5)
        b = merge_ocs(loaded, n_classes=5)
        assert a.groups == b.groups
        assert a.representatives == b.representatives

    def test_bad_format_rejected(self, small_campaign):
        doc = campaign_to_dict(small_campaign)
        doc["format"] = 99
        with pytest.raises(DatasetError):
            campaign_from_dict(doc)

    def test_unknown_oc_rejected(self, small_campaign):
        doc = campaign_to_dict(small_campaign)
        doc["ocs"][0] = "WARP_SPEED"
        with pytest.raises(DatasetError):
            campaign_from_dict(doc)
