"""Dataset registry: versioned publishing, checksums, path resolution.

The contract under test: published campaigns round-trip bit-identically,
corruption anywhere in the payload fails closed, the ``LATEST`` tag
never points at a missing version without an error, and every consumer
entry point -- ``load_campaign``, ``resolve_dataset_path``, ``repro
train --campaign`` -- accepts a registry directory as readily as a plain
campaign file.
"""

import json

import pytest

from repro.cli import main
from repro.errors import DatasetError
from repro.profiling import DatasetRegistry, resolve_dataset_path
from repro.profiling.registry import (
    checksum_campaign_doc,
    dataset_document,
    unwrap_dataset_document,
)
from repro.profiling.storage import campaign_to_dict, load_campaign


@pytest.fixture()
def registry(tmp_path):
    return DatasetRegistry(tmp_path / "datasets")


class TestPublish:
    def test_publish_load_round_trip(self, registry, small_campaign):
        version = registry.publish(small_campaign, "camp", meta={"run": 1})
        assert version == "v000001"
        loaded = registry.load("camp")
        assert campaign_to_dict(loaded) == campaign_to_dict(small_campaign)
        assert registry.meta("camp") == {"run": 1}

    def test_versions_are_immutable_and_ordered(self, registry,
                                                small_campaign):
        registry.publish(small_campaign, "camp")
        first = registry.path("camp", "v000001").read_bytes()
        registry.publish(small_campaign, "camp", meta={"second": True})
        assert registry.versions("camp") == ["v000001", "v000002"]
        assert registry.latest("camp") == "v000002"
        assert registry.path("camp", "v000001").read_bytes() == first
        assert registry.names() == ["camp"]

    def test_bad_name_rejected(self, registry, small_campaign):
        with pytest.raises(DatasetError, match="bad dataset name"):
            registry.publish(small_campaign, "../escape")

    def test_unknown_dataset_and_version(self, registry, small_campaign):
        with pytest.raises(DatasetError, match="no dataset"):
            registry.versions("ghost")
        registry.publish(small_campaign, "camp")
        with pytest.raises(DatasetError, match="not found"):
            registry.path("camp", "v000009")


class TestChecksum:
    def test_flipped_payload_bit_fails_closed(self, registry,
                                              small_campaign):
        registry.publish(small_campaign, "camp")
        path = registry.path("camp")
        doc = json.loads(path.read_text())
        doc["campaign"]["seed"] = doc["campaign"]["seed"] + 1
        path.write_text(json.dumps(doc))
        with pytest.raises(DatasetError, match="checksum mismatch"):
            registry.load("camp")

    def test_wrong_kind_rejected(self, small_campaign):
        doc = dataset_document(small_campaign)
        doc["kind"] = "model"
        with pytest.raises(DatasetError, match="not a campaign dataset"):
            unwrap_dataset_document(doc)

    def test_checksum_is_canonical(self, small_campaign):
        doc = campaign_to_dict(small_campaign)
        reordered = json.loads(
            json.dumps(doc), object_pairs_hook=lambda kv: dict(reversed(kv))
        )
        assert checksum_campaign_doc(doc) == checksum_campaign_doc(reordered)

    def test_torn_latest_tag_fails_closed(self, registry, small_campaign):
        registry.publish(small_campaign, "camp")
        (registry.root / "camp" / "LATEST").write_text("v000042\n")
        with pytest.raises(DatasetError, match="torn tag"):
            registry.latest("camp")


class TestResolution:
    def test_resolves_file_dataset_dir_and_root(self, registry,
                                                small_campaign):
        registry.publish(small_campaign, "camp")
        registry.publish(small_campaign, "camp")
        latest = registry.path("camp")
        assert resolve_dataset_path(latest) == latest
        assert resolve_dataset_path(registry.root / "camp") == latest
        assert resolve_dataset_path(registry.root) == latest

    def test_ambiguous_root_rejected(self, registry, small_campaign):
        registry.publish(small_campaign, "a")
        registry.publish(small_campaign, "b")
        with pytest.raises(DatasetError, match="exactly one"):
            resolve_dataset_path(registry.root)

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(DatasetError, match="no such campaign"):
            resolve_dataset_path(tmp_path / "ghost")

    def test_load_campaign_understands_dataset_documents(
        self, registry, small_campaign
    ):
        registry.publish(small_campaign, "camp")
        loaded = load_campaign(registry.path("camp"))
        assert campaign_to_dict(loaded) == campaign_to_dict(small_campaign)


class TestTrainConsumesRegistry:
    def test_train_on_published_dataset(self, registry, small_campaign,
                                        tmp_path, capsys):
        """``repro train --campaign <registry>/<name>`` trains straight
        off the published, checksummed artifact."""
        registry.publish(small_campaign, "camp")
        out = tmp_path / "sel.json"
        rc = main(
            ["train", "--campaign", str(registry.root / "camp"),
             "--task", "select", "--gpu", "V100", "--out", str(out),
             "--seed", "9"]
        )
        assert rc == 0
        capsys.readouterr()
        assert json.loads(out.read_text())["gpu"] == "V100"

    def test_train_reports_corrupt_dataset(self, registry, small_campaign,
                                           tmp_path, capsys):
        registry.publish(small_campaign, "camp")
        path = registry.path("camp")
        doc = json.loads(path.read_text())
        doc["campaign"]["seed"] += 1
        path.write_text(json.dumps(doc))
        rc = main(
            ["train", "--campaign", str(registry.root / "camp"),
             "--task", "select", "--gpu", "V100",
             "--out", str(tmp_path / "sel.json"), "--seed", "9"]
        )
        assert rc != 0
        assert "checksum mismatch" in capsys.readouterr().err
