"""Tests for PCC computation and OC merging."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.profiling import (
    merge_ocs,
    oc_time_matrix,
    pairwise_pcc,
    pcc_intersection,
    top_pairs,
)


class TestPairwisePCC:
    def test_perfect_correlation(self):
        m = np.array([[1.0, 2.0, 3.0, 4.0], [2.0, 4.0, 6.0, 8.0]])
        pcc = pairwise_pcc(m)
        assert pcc[0, 1] == pytest.approx(1.0)

    def test_anticorrelation(self):
        m = np.array([[1.0, 2.0, 3.0, 4.0], [4.0, 3.0, 2.0, 1.0]])
        assert pairwise_pcc(m)[0, 1] == pytest.approx(-1.0)

    def test_symmetric_nan_diagonal(self):
        rng = np.random.default_rng(0)
        m = rng.random((4, 10))
        pcc = pairwise_pcc(m)
        assert np.isnan(pcc).trace() == 4  # diagonal all NaN
        assert np.allclose(pcc, pcc.T, equal_nan=True)

    def test_nan_columns_skipped(self):
        m = np.array(
            [[1.0, np.nan, 3.0, 4.0, 5.0], [2.0, 9.0, 6.0, 8.0, 10.0]]
        )
        # Common columns 0,2,3,4 are perfectly proportional.
        assert pairwise_pcc(m)[0, 1] == pytest.approx(1.0)

    def test_min_common_enforced(self):
        m = np.array([[1.0, 2.0, np.nan, np.nan], [1.0, 2.0, np.nan, np.nan]])
        assert np.isnan(pairwise_pcc(m, min_common=4)[0, 1])

    def test_constant_rows(self):
        m = np.array([[1.0, 1.0, 1.0, 1.0], [2.0, 2.0, 2.0, 2.0]])
        # Zero variance on both sides with identical centered values.
        assert pairwise_pcc(m)[0, 1] == 1.0


class TestTopPairs:
    def test_ordering_by_abs(self):
        pcc = np.full((3, 3), np.nan)
        pcc[0, 1] = pcc[1, 0] = 0.5
        pcc[0, 2] = pcc[2, 0] = -0.9
        pcc[1, 2] = pcc[2, 1] = 0.7
        pairs = top_pairs(pcc, 2)
        assert pairs[0][:2] == (0, 2)
        assert pairs[1][:2] == (1, 2)

    def test_intersection(self):
        per_gpu = {
            "a": [(0, 1, 0.9), (1, 2, 0.8)],
            "b": [(0, 1, 0.95), (2, 3, 0.7)],
        }
        assert pcc_intersection(per_gpu) == {(0, 1)}


class TestMergeOCs:
    def test_time_matrix_shape(self, small_campaign):
        names, m = oc_time_matrix(small_campaign, "V100")
        assert m.shape == (len(names), len(small_campaign.stencils))

    def test_merge_to_five(self, small_campaign):
        grouping = merge_ocs(small_campaign, n_classes=5)
        assert grouping.n_classes == 5
        assert len(grouping.representatives) == 5

    def test_every_oc_assigned(self, small_campaign):
        grouping = merge_ocs(small_campaign, n_classes=5)
        names = {oc.name for oc in small_campaign.ocs}
        assert set(grouping.class_of) == names

    def test_representative_in_own_group(self, small_campaign):
        grouping = merge_ocs(small_campaign, n_classes=5)
        for c, rep in enumerate(grouping.representatives):
            assert rep in grouping.groups[c]
            assert grouping.label(rep) == c

    def test_groups_partition(self, small_campaign):
        grouping = merge_ocs(small_campaign, n_classes=4)
        flat = [oc for g in grouping.groups for oc in g]
        assert len(flat) == len(set(flat)) == len(small_campaign.ocs)

    def test_label_unknown_raises(self, small_campaign):
        grouping = merge_ocs(small_campaign, n_classes=5)
        with pytest.raises(DatasetError):
            grouping.label("HEX")

    def test_n_classes_bounds(self, small_campaign):
        with pytest.raises(DatasetError):
            merge_ocs(small_campaign, n_classes=0)
        with pytest.raises(DatasetError):
            merge_ocs(small_campaign, n_classes=999)

    def test_deterministic(self, small_campaign):
        a = merge_ocs(small_campaign, n_classes=5)
        b = merge_ocs(small_campaign, n_classes=5)
        assert a.groups == b.groups and a.representatives == b.representatives
