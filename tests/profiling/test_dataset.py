"""Tests for classification/regression dataset assembly."""

import numpy as np
import pytest

from repro.optimizations import N_PARAM_FEATURES
from repro.profiling import (
    build_classification_dataset,
    build_regression_dataset,
    merge_ocs,
    oc_flags,
    regression_feature_size,
)
from repro.profiling.dataset import N_HW_FEATURES, N_OC_FEATURES
from repro.stencil import n_features


@pytest.fixture(scope="module")
def grouping(small_campaign):
    return merge_ocs(small_campaign, n_classes=5)


class TestOCFlags:
    def test_width(self):
        assert oc_flags("naive").shape == (N_OC_FEATURES,)

    def test_naive_all_zero(self):
        assert oc_flags("naive").sum() == 0

    def test_flags_set(self):
        f = oc_flags("ST_RT_TB")
        # Order: ST BM CM RT PR TB
        assert f.tolist() == [1, 0, 0, 1, 0, 1]


class TestClassificationDataset:
    def test_shapes(self, small_campaign, grouping):
        ds = build_classification_dataset(small_campaign, grouping, "V100")
        n = len(small_campaign.stencils)
        assert ds.features.shape == (n, n_features())
        assert ds.tensors.shape == (n, 9, 9)
        assert ds.labels.shape == (n,)
        assert ds.n_samples == n

    def test_labels_in_range(self, small_campaign, grouping):
        ds = build_classification_dataset(small_campaign, grouping, "A100")
        assert ds.labels.min() >= 0
        assert ds.labels.max() < ds.n_classes == 5

    def test_labels_consistent_with_best(self, small_campaign, grouping):
        ds = build_classification_dataset(small_campaign, grouping, "V100")
        for label, best in zip(ds.labels, ds.best_ocs):
            assert grouping.label(best) == label


class TestRegressionDataset:
    def test_shapes(self, small_campaign):
        ds = build_regression_dataset(small_campaign, gpus=("V100",))
        f = regression_feature_size()
        assert ds.features.shape[1] == f
        assert ds.aux.shape[1] == N_OC_FEATURES + N_PARAM_FEATURES + N_HW_FEATURES
        assert ds.tensors.shape[0] == ds.n_samples
        assert ds.times_ms.shape == (ds.n_samples,)

    def test_row_count_matches_measurements(self, small_campaign):
        ds = build_regression_dataset(small_campaign, gpus=("V100",))
        assert ds.n_samples == len(small_campaign.measurements("V100"))

    def test_multi_gpu_concatenation(self, small_campaign):
        one = build_regression_dataset(small_campaign, gpus=("V100",))
        both = build_regression_dataset(small_campaign)
        assert both.n_samples == one.n_samples + len(
            small_campaign.measurements("A100")
        )
        assert set(both.gpus) == {"V100", "A100"}

    def test_hw_features_embedded(self, small_campaign):
        ds = build_regression_dataset(small_campaign, gpus=("A100",))
        # Last four flat features are the A100 hardware vector.
        assert np.allclose(ds.features[0, -4:], [40.0, 1555.0, 108.0, 9.7])

    def test_times_positive(self, small_campaign):
        ds = build_regression_dataset(small_campaign)
        assert (ds.times_ms > 0).all()

    def test_feature_split_consistency(self, small_campaign):
        ds = build_regression_dataset(small_campaign, gpus=("V100",))
        # features == [stencil features | aux]
        assert np.allclose(ds.features[:, n_features():], ds.aux)


class TestProvenanceAndAnalyticalFeatures:
    """Per-row OC/setting provenance and the hybrid feature columns."""

    def test_provenance_recorded(self, small_campaign):
        ds = build_regression_dataset(small_campaign, gpus=("V100",))
        assert len(ds.ocs) == ds.n_samples
        assert len(ds.settings) == ds.n_samples
        for m, oc, setting in zip(
            small_campaign.measurements("V100"), ds.ocs, ds.settings
        ):
            assert m.oc == oc and m.setting == setting

    def test_matrix_requires_provenance(self, small_campaign):
        from repro.errors import DatasetError
        from repro.profiling.dataset import analytical_feature_matrix

        ds = build_regression_dataset(small_campaign, gpus=("V100",))
        ds.ocs = []  # simulate a dataset built before provenance existed
        with pytest.raises(DatasetError, match="provenance"):
            analytical_feature_matrix(small_campaign, ds)

    def test_matrix_shape_and_crash_flags(self):
        from repro.analysis.perfmodel import ANALYTICAL_FEATURE_NAMES
        from repro.optimizations import OC_BY_NAME
        from repro.profiling import run_campaign
        from repro.profiling.dataset import analytical_feature_matrix
        from repro.stencil import get

        campaign = run_campaign(
            [get("star2d1r"), get("box2d1r")],
            gpus=("V100",),
            ocs=[OC_BY_NAME["naive"], OC_BY_NAME["ST"]],
            n_settings=1,
            seed=2,
        )
        ds = build_regression_dataset(campaign)
        X = analytical_feature_matrix(campaign, ds)
        assert X.shape == (ds.n_samples, len(ANALYTICAL_FEATURE_NAMES))
        # Every profiled row launched, so no crash flags are set and
        # the log-time column is strictly positive.
        assert (X[:, -1] == 0.0).all()
        assert (X[:, 0] > 0.0).all()
