"""Tests for k-fold and stratified cross-validation splitters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatasetError
from repro.profiling import kfold_indices, stratified_kfold_indices


class TestKFold:
    def test_partition(self):
        folds = list(kfold_indices(20, 5, seed=0))
        assert len(folds) == 5
        all_test = np.concatenate([t for _, t in folds])
        assert sorted(all_test) == list(range(20))

    def test_disjoint_train_test(self):
        for train, test in kfold_indices(23, 5, seed=1):
            assert not set(train) & set(test)
            assert len(train) + len(test) == 23

    def test_balanced_sizes(self):
        sizes = [len(t) for _, t in kfold_indices(22, 5, seed=2)]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        a = [(tr.tolist(), te.tolist()) for tr, te in kfold_indices(10, 3, seed=4)]
        b = [(tr.tolist(), te.tolist()) for tr, te in kfold_indices(10, 3, seed=4)]
        assert a == b

    def test_errors(self):
        with pytest.raises(DatasetError):
            list(kfold_indices(10, 1, seed=0))
        with pytest.raises(DatasetError):
            list(kfold_indices(3, 5, seed=0))

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(10, 200), k=st.integers(2, 8), seed=st.integers(0, 100))
    def test_property_each_index_tested_once(self, n, k, seed):
        if n < k:
            return
        seen = np.zeros(n, dtype=int)
        for _, test in kfold_indices(n, k, seed):
            seen[test] += 1
        assert (seen == 1).all()


class TestStratifiedKFold:
    def test_class_balance_preserved(self):
        labels = np.array([0] * 40 + [1] * 10)
        for train, test in stratified_kfold_indices(labels, 5, seed=0):
            # Each test fold should carry ~8 of class 0 and ~2 of class 1.
            assert 1 <= (labels[test] == 1).sum() <= 3

    def test_partition(self):
        labels = np.array([0, 1, 2] * 10)
        all_test = np.concatenate(
            [t for _, t in stratified_kfold_indices(labels, 3, seed=1)]
        )
        assert sorted(all_test.tolist()) == list(range(30))

    def test_rare_class_spread(self):
        # A class with exactly n_folds members lands one per fold.
        labels = np.array([0] * 20 + [1] * 4)
        counts = [
            (labels[test] == 1).sum()
            for _, test in stratified_kfold_indices(labels, 4, seed=2)
        ]
        assert counts == [1, 1, 1, 1]

    def test_deterministic(self):
        labels = np.array([0, 0, 1, 1, 0, 1] * 5)
        a = [t.tolist() for _, t in stratified_kfold_indices(labels, 3, seed=7)]
        b = [t.tolist() for _, t in stratified_kfold_indices(labels, 3, seed=7)]
        assert a == b
