"""Golden tests: each pass must flag its deliberately broken snippet."""

import dataclasses


from repro.analysis.framework import Analyzer, all_rules, build_context
from repro.analysis.lint import feasible_settings, lint_kernel
from repro.analysis.rules_bounds import BoundsPass
from repro.analysis.rules_conformance import ConformancePass
from repro.analysis.rules_memory import MemoryAccessPass
from repro.analysis.rules_race import RacePass
from repro.analysis.rules_resources import ResourcePass
from repro.errors import KernelLaunchError
from repro.optimizations import kernelmodel
from repro.optimizations.combos import OC
from repro.stencil import library


def run_pass(pass_obj, source, **ctx_kw):
    return pass_obj.run(build_context(source, **ctx_kw))


def rules_of(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# races
# ----------------------------------------------------------------------
RACE_WRITE_THEN_READ = """\
#define BLOCK_X 32
__global__ void k(const double* __restrict__ in, double* __restrict__ out)
{
    __shared__ double buf[BLOCK_X];
    buf[threadIdx.x] = in[threadIdx.x];
    out[threadIdx.x] = buf[threadIdx.x + 1];
}
"""

RACE_LOOP_CARRIED = """\
__global__ void k(const double* __restrict__ in, double* __restrict__ out)
{
    __shared__ double buf[32];
    for (int i = 0; i < 8; ++i) {
        double v = buf[i];
        buf[i] = in[i];
    }
}
"""

RACE_DIVERGENT_BARRIER = """\
__global__ void k(const double* __restrict__ in, double* __restrict__ out)
{
    __shared__ double buf[32];
    if (threadIdx.x < 16) {
        __syncthreads();
    }
}
"""


class TestRacePass:
    def test_write_then_read_without_barrier(self):
        findings = run_pass(RacePass(), RACE_WRITE_THEN_READ)
        assert rules_of(findings) == ["RACE001"]
        assert "buf" in findings[0].message

    def test_barrier_between_write_and_read_is_clean(self):
        fixed = RACE_WRITE_THEN_READ.replace(
            "    out[threadIdx.x]",
            "    __syncthreads();\n    out[threadIdx.x]",
        )
        assert run_pass(RacePass(), fixed) == []

    def test_loop_carried_race_found_by_second_pass(self):
        findings = run_pass(RacePass(), RACE_LOOP_CARRIED)
        assert rules_of(findings) == ["RACE001"]

    def test_loop_with_trailing_barrier_is_clean(self):
        fixed = RACE_LOOP_CARRIED.replace(
            "        buf[i] = in[i];",
            "        buf[i] = in[i];\n        __syncthreads();",
        )
        assert run_pass(RacePass(), fixed) == []

    def test_barrier_under_divergent_branch(self):
        findings = run_pass(RacePass(), RACE_DIVERGENT_BARRIER)
        assert rules_of(findings) == ["RACE002"]
        assert "deadlock" in findings[0].message

    def test_barrier_under_uniform_branch_is_clean(self):
        uniform = RACE_DIVERGENT_BARRIER.replace("threadIdx.x < 16", "blockIdx.x < 16")
        assert run_pass(RacePass(), uniform) == []


# ----------------------------------------------------------------------
# bounds
# ----------------------------------------------------------------------
BOUNDS_TEMPLATE = """\
#define NX 64
#define NY 32
#define BLOCK_X 32
#define BLOCK_Y 4

__global__ void k(const double* __restrict__ in, double* __restrict__ out)
{{
    const int x = blockIdx.x * BLOCK_X + threadIdx.x;
    const int y = blockIdx.y * BLOCK_Y + threadIdx.y;
    if ({guard}) {{
        double acc = 0.0;
{taps}
        out[(y) * NX + (x)] = acc;
    }}
}}

int run(double* d_in, double* d_out)
{{
    dim3 block(BLOCK_X, BLOCK_Y, 1);
    dim3 grid(NX / BLOCK_X, NY / BLOCK_Y, 1);
    k<<<grid, block>>>(d_in, d_out);
    return 0;
}}
"""

GUARD_R1 = "x >= 1 && x < NX - 1 && y >= 1 && y < NY - 1"
TAPS_R1 = "\n".join(
    f"        acc += in[{idx}];"
    for idx in (
        "(y) * NX + (x + (-1))",
        "(y) * NX + (x + (1))",
        "(y + (-1)) * NX + (x)",
        "(y + (1)) * NX + (x)",
        "(y) * NX + (x)",
    )
)


def bounds_unit(guard=GUARD_R1, taps=TAPS_R1):
    return BOUNDS_TEMPLATE.format(guard=guard, taps=taps)


class TestBoundsPass:
    def test_guarded_taps_are_clean(self):
        assert run_pass(BoundsPass(), bounds_unit()) == []

    def test_tap_beyond_guard_radius_is_oob(self):
        src = bounds_unit(
            taps=TAPS_R1 + "\n        acc += in[(y) * NX + (x + (-2))];"
        )
        findings = run_pass(BoundsPass(), src)
        assert "BOUNDS001" in rules_of(findings)
        oob = next(f for f in findings if f.rule == "BOUNDS001")
        assert "axis 0" in oob.message
        # The guard contract also fails: taps imply extent 2, guard clips 1.
        assert "BOUNDS002" in rules_of(findings)

    def test_over_guarded_axis_flags_model_drift(self):
        src = bounds_unit(
            guard="x >= 2 && x < NX - 2 && y >= 1 && y < NY - 1"
        )
        findings = run_pass(BoundsPass(), src)
        assert rules_of(findings) == ["BOUNDS002"]
        assert "over-guarded" in findings[0].message

    def test_unguarded_global_access_is_oob(self):
        src = bounds_unit(guard="x >= 0 && x < NX && y >= 0 && y < NY")
        findings = run_pass(BoundsPass(), src)
        assert "BOUNDS001" in rules_of(findings)

    def test_unanalyzable_index_is_info(self):
        src = bounds_unit(taps=TAPS_R1 + "\n        acc += in[x * 7 + y];")
        findings = run_pass(BoundsPass(), src)
        assert rules_of(findings) == ["BOUNDS003"]

    def test_local_array_overrun(self):
        src = bounds_unit(
            taps=TAPS_R1
            + "\n        __shared__ double tile[BLOCK_Y][BLOCK_X];"
            + "\n        acc += tile[threadIdx.y][threadIdx.x + 1];"
        )
        findings = run_pass(BoundsPass(), src)
        assert "BOUNDS001" in rules_of(findings)
        oob = next(f for f in findings if f.rule == "BOUNDS001")
        assert "tile" in oob.message


# ----------------------------------------------------------------------
# resources (codegen <-> kernelmodel consistency)
# ----------------------------------------------------------------------
class TestResourcePass:
    def test_smem_claim_drift_is_flagged(self, monkeypatch):
        stencil = library.get("star3d2r")
        oc = OC.parse("ST")
        setting = feasible_settings(stencil, oc, 1)[0]
        real = kernelmodel.build_profile

        def perturbed(stencil, oc, setting, grid=None):
            p = real(stencil, oc, setting, grid)
            return dataclasses.replace(p, smem_per_block=p.smem_per_block + 64)

        monkeypatch.setattr(kernelmodel, "build_profile", perturbed)
        _, report = lint_kernel(stencil, oc, setting)
        drift = [f for f in report.errors if f.rule == "RES001"]
        assert drift and "drifted" in drift[0].message

    def test_register_queue_claim_drift_is_flagged(self, monkeypatch):
        stencil = library.get("star3d1r")
        oc = OC.parse("ST")
        setting = feasible_settings(stencil, oc, 1)[0].replace(use_smem=0)
        real = kernelmodel.register_queue_planes
        monkeypatch.setattr(
            kernelmodel,
            "register_queue_planes",
            lambda s, o, p: real(s, o, p) + 1,
        )
        try:
            _, report = lint_kernel(stencil, oc, setting)
        finally:
            # build_profile may have cached values computed under the patch.
            kernelmodel.build_profile.cache_clear()
        assert any(f.rule == "RES002" for f in report.errors)

    def test_host_geometry_drift_is_flagged(self):
        stencil = library.get("star2d1r")
        oc = OC.parse("naive")
        setting = feasible_settings(stencil, oc, 1)[0].replace(block_x=32)
        source, report = lint_kernel(stencil, oc, setting)
        assert report.ok
        tampered = source.replace("dim3 block(BLOCK_X,", "dim3 block(48,")
        assert tampered != source
        report = Analyzer().analyze(
            tampered, stencil=stencil, oc=oc, setting=setting
        )
        geo = [f for f in report.errors if f.rule == "RES003"]
        assert geo and "threads/block" in geo[0].message

    def test_oversized_static_smem_warns(self):
        src = (
            "__global__ void k(const double* __restrict__ in, "
            "double* __restrict__ out)\n{\n"
            "    __shared__ double big[128][64];\n}\n"
        )
        findings = run_pass(ResourcePass(), src)
        assert rules_of(findings) == ["RES004"]
        assert "65536" in findings[0].message

    def test_model_rejection_is_info(self, monkeypatch):
        stencil = library.get("star2d1r")
        oc = OC.parse("naive")
        setting = feasible_settings(stencil, oc, 1)[0]
        source, _ = lint_kernel(stencil, oc, setting)

        def refuse(*args, **kwargs):
            raise KernelLaunchError("halo consumes the tile")

        monkeypatch.setattr(kernelmodel, "build_profile", refuse)
        report = Analyzer().analyze(
            source, stencil=stencil, oc=oc, setting=setting
        )
        infos = [f for f in report.findings if f.rule == "RES005"]
        assert infos and "halo consumes the tile" in infos[0].message
        assert report.ok  # info-severity findings never fail the lint


# ----------------------------------------------------------------------
# OC conformance
# ----------------------------------------------------------------------
def conf_snippet(oc_name, body):
    return (
        f"// optimization combination: {oc_name}\n"
        "#define NX 64\n"
        "__global__ void k(const double* __restrict__ in, "
        "double* __restrict__ out)\n{\n" + body + "}\n"
    )


class TestConformancePass:
    def test_streaming_without_queue_structure(self):
        findings = run_pass(
            ConformancePass(), conf_snippet("ST", "    double acc = 0.0;\n")
        )
        assert set(rules_of(findings)) == {"OCST001"}
        assert len(findings) == 3  # no rotation, no queue decl, no plane loop

    def test_queue_rotation_outside_streaming_oc(self):
        body = "    _queue_rotate(q, 0.0);\n"
        findings = run_pass(ConformancePass(), conf_snippet("naive", body))
        assert rules_of(findings) == ["OCXX001"]

    def test_block_merge_with_strided_indexing(self):
        body = (
            "    const int y0 = blockIdx.y * BLOCK_Y + threadIdx.y;\n"
            "    for (int mi = 0; mi < 2; ++mi) {\n"
            "        const int y = y0 + mi * BLOCK_Y;\n"
            "        out[y] = 0.0;\n"
            "    }\n"
        )
        findings = run_pass(ConformancePass(), conf_snippet("BM", body))
        assert rules_of(findings) == ["OCBM001"]
        assert "adjacent" in findings[0].message

    def test_merge_loop_in_merge_free_oc(self):
        body = (
            "    for (int mi = 0; mi < 2; ++mi) {\n"
            "        const int y = 0 + mi * 1;\n"
            "    }\n"
        )
        findings = run_pass(ConformancePass(), conf_snippet("naive", body))
        assert rules_of(findings) == ["OCXX001"]

    def test_retiming_without_partial_accumulator(self):
        findings = run_pass(
            ConformancePass(), conf_snippet("RT", "    double acc = 0.0;\n")
        )
        assert rules_of(findings) == ["OCRT001"]

    def test_prefetch_without_double_buffer(self):
        findings = run_pass(
            ConformancePass(), conf_snippet("PR", "    double acc = 0.0;\n")
        )
        assert rules_of(findings) == ["OCPR001"]

    def test_temporal_without_step_loop(self):
        findings = run_pass(
            ConformancePass(), conf_snippet("TB", "    double acc = 0.0;\n")
        )
        assert rules_of(findings) == ["OCTB001"]

    def test_step_loop_in_non_temporal_oc(self):
        body = (
            "    for (int step = 1; step < 4; ++step) {\n"
            "        double t = 0.0;\n"
            "    }\n"
        )
        findings = run_pass(ConformancePass(), conf_snippet("naive", body))
        assert rules_of(findings) == ["OCXX001"]

    def test_snippet_without_declared_oc_is_skipped(self):
        src = (
            "__global__ void k(const double* __restrict__ in, "
            "double* __restrict__ out)\n{\n    double acc = 0.0;\n}\n"
        )
        assert run_pass(ConformancePass(), src) == []


# ----------------------------------------------------------------------
# coalescing / divergence heuristics
# ----------------------------------------------------------------------
class TestMemoryAccessPass:
    def test_streaming_contiguous_axis_warns(self):
        stencil = library.get("star2d1r")
        oc = OC.parse("ST")
        setting = feasible_settings(stencil, oc, 1)[0].replace(stream_dim=1)
        _, report = lint_kernel(stencil, oc, setting)
        assert any(f.rule == "PERF001" for f in report.warnings)

    def test_block_merge_contiguous_axis_warns(self):
        stencil = library.get("star2d1r")
        oc = OC.parse("BM")
        setting = feasible_settings(stencil, oc, 1)[0].replace(
            merge_dim=1, merge_factor=2
        )
        _, report = lint_kernel(stencil, oc, setting)
        assert any(f.rule == "PERF003" for f in report.warnings)

    def test_narrow_block_warns(self):
        src = (
            "#define BLOCK_X 16\n"
            "__global__ void k(const double* __restrict__ in, "
            "double* __restrict__ out)\n{\n    double acc = 0.0;\n}\n"
        )
        findings = run_pass(MemoryAccessPass(), src)
        assert rules_of(findings) == ["PERF002"]


# ----------------------------------------------------------------------
# analyzer plumbing
# ----------------------------------------------------------------------
class TestAnalyzer:
    def test_unparseable_source_is_parse001(self):
        report = Analyzer().analyze(
            "__global__ void k(double* in)\n{\n    while (1) {\n    }\n}\n"
        )
        assert rules_of(report.findings) == ["PARSE001"]
        assert not report.ok

    def test_inline_suppression_moves_finding_aside(self):
        suppressed = RACE_WRITE_THEN_READ.replace(
            "    out[threadIdx.x] = buf[threadIdx.x + 1];",
            "    out[threadIdx.x] = buf[threadIdx.x + 1];"
            "  // lint: disable=RACE001",
        )
        report = Analyzer(passes=[RacePass()]).analyze(suppressed)
        assert report.findings == []
        assert rules_of(report.suppressed) == ["RACE001"]
        assert report.ok

    def test_file_suppression(self):
        suppressed = "// lint: disable-file=RACE001\n" + RACE_WRITE_THEN_READ
        report = Analyzer(passes=[RacePass()]).analyze(suppressed)
        assert report.findings == []
        assert rules_of(report.suppressed) == ["RACE001"]

    def test_baseline_moves_finding_aside(self):
        from repro.analysis.findings import Baseline

        report = Analyzer(passes=[RacePass()]).analyze(RACE_WRITE_THEN_READ)
        base = Baseline.from_findings(report.findings)
        rerun = Analyzer(passes=[RacePass()]).analyze(
            RACE_WRITE_THEN_READ, baseline=base
        )
        assert rerun.findings == []
        assert rules_of(rerun.baselined) == ["RACE001"]

    def test_rule_catalog_is_complete(self):
        ids = [r.rule for r in all_rules()]
        assert ids == sorted(ids)
        for rule in ("RACE001", "BOUNDS002", "RES001", "OCST001", "PERF001"):
            assert rule in ids
