"""Tests for the structural IR parser over generated and handwritten CUDA."""

import pytest

from repro.analysis import expr as E
from repro.analysis import ir
from repro.codegen.cuda import generate_cuda
from repro.optimizations.combos import OC
from repro.optimizations.params import ParamSetting
from repro.stencil import library

SNIPPET = """\
// stencil: demo
// optimization combination: naive
// grid: 64 x 32
#define NX 64
#define NY 32
#define BLOCK_X 32
#define BLOCK_Y 4
#define STEPS (4 + 4)

__global__ void demo_kernel(const double* __restrict__ in, double* __restrict__ out)
{
    const int x = blockIdx.x * BLOCK_X + threadIdx.x;
    const int y = blockIdx.y * BLOCK_Y + threadIdx.y;
    __shared__ double tile[BLOCK_Y][BLOCK_X];
    tile[threadIdx.y][threadIdx.x] = in[(y) * NX + (x)];
    __syncthreads();
    if (x >= 1 && x < NX - 1 && y >= 1 && y < NY - 1) {
        double acc = 0.0;
        #pragma unroll
        for (int mi = 0; mi < 2; ++mi) {
            acc += tile[threadIdx.y][threadIdx.x]; acc *= 0.5;
        }
        out[(y) * NX + (x)] = acc;
    }
}

int run(double* d_in, double* d_out)
{
    dim3 block(BLOCK_X, BLOCK_Y, 1);
    dim3 grid(NX / BLOCK_X, NY / BLOCK_Y, 1);
    for (int step = 0; step < STEPS; ++step) {
        demo_kernel<<<grid, block>>>(d_in, d_out);
    }
    return 0;
}
"""


class TestSnippet:
    def setup_method(self):
        self.unit = ir.parse_unit(SNIPPET)

    def test_macros_resolved_in_order(self):
        assert self.unit.macros["NX"] == 64
        assert self.unit.macros["STEPS"] == 8

    def test_meta_comments(self):
        assert self.unit.meta["stencil"] == "demo"
        assert self.unit.meta["optimization combination"] == "naive"
        assert self.unit.meta["grid"] == "64 x 32"

    def test_kernel_header(self):
        k = self.unit.kernel
        assert k.name == "demo_kernel"
        assert k.params == ("in", "out")

    def test_declarations(self):
        decls = self.unit.kernel.declarations()
        assert decls["x"].const and not decls["x"].is_array
        assert decls["acc"].ctype == "double"
        tile = decls["tile"]
        assert tile.shared and tile.is_array
        dims = [E.eval_const(d, self.unit.macros) for d in tile.dims]
        assert dims == [4, 32]
        assert self.unit.kernel.shared_arrays() == {"tile": tile}

    def test_barrier_and_pragma(self):
        assert len(self.unit.kernel.barriers()) == 1
        pragmas = [
            s for s, _ in ir.walk_stmts(self.unit.kernel.body)
            if isinstance(s, ir.Pragma)
        ]
        assert pragmas and "unroll" in pragmas[0].text

    def test_fused_statements_split_on_semicolon(self):
        loops = [
            s for s, _ in ir.walk_stmts(self.unit.kernel.body)
            if isinstance(s, ir.For) and s.var == "mi"
        ]
        assert len(loops) == 1
        ops = [s.op for s in loops[0].body if isinstance(s, ir.Assign)]
        assert ops == ["+=", "*="]

    def test_guard_condition(self):
        guards = [
            s for s, _ in ir.walk_stmts(self.unit.kernel.body)
            if isinstance(s, ir.If)
        ]
        assert len(guards) == 1
        assert len(E.conjuncts(guards[0].cond)) == 4

    def test_host_geometry(self):
        host = self.unit.host
        assert host is not None
        assert host.launched_kernel == "demo_kernel"
        block = [E.eval_const(d, self.unit.macros) for d in host.block_dims]
        grid = [E.eval_const(d, self.unit.macros) for d in host.grid_dims]
        assert block == [32, 4, 1]
        assert grid == [2, 8, 1]
        assert E.eval_const(host.launches, self.unit.macros) == 8

    def test_statements_carry_line_numbers(self):
        decls = self.unit.kernel.declarations()
        assert decls["tile"].line == SNIPPET.splitlines().index(
            "    __shared__ double tile[BLOCK_Y][BLOCK_X];"
        ) + 1


class TestGeneratedSources:
    def test_naive_kernel_parses(self):
        source = generate_cuda(
            library.get("star2d1r"), OC.parse("naive"), ParamSetting()
        )
        unit = ir.parse_unit(source)
        assert unit.kernels and unit.host is not None
        assert unit.meta.get("optimization combination") == "naive"
        assert unit.kernel.params[:2] == ("in", "out")

    def test_streaming_kernel_parses(self):
        setting = ParamSetting(stream_dim=3, use_smem=1)
        source = generate_cuda(
            library.get("star3d1r"), OC.parse("ST"), setting
        )
        unit = ir.parse_unit(source)
        assert unit.kernel.shared_arrays()
        assert any(
            isinstance(s, ir.CallStmt)
            and s.call.func in ("_queue_push", "_queue_rotate")
            for s, _ in ir.walk_stmts(unit.kernel.body)
        )


class TestParseErrors:
    def test_unsupported_construct(self):
        src = "__global__ void k(double* in)\n{\n    while (1) {\n    }\n}\n"
        with pytest.raises(ir.ParseError):
            ir.parse_unit(src)

    def test_unterminated_block(self):
        src = "__global__ void k(double* in)\n{\n    double a = 0.0;\n"
        with pytest.raises(ir.ParseError):
            ir.parse_unit(src)

    def test_empty_unit_has_no_kernel(self):
        unit = ir.parse_unit("#define NX 4\n")
        with pytest.raises(ir.ParseError):
            unit.kernel
