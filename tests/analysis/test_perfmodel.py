"""The static performance model: metric extraction and time estimates.

Golden fixtures pin hand-computed footprints, volumes and launch
geometry for representative 2D/3D star and box kernels under the main
scheme families (cache, register streaming, shared-memory streaming,
temporal blocking).  The estimate itself must be a pure function of the
source text: bit-identical across repeated runs and across process
pools of any size.
"""

import multiprocessing

import pytest

from repro.analysis import framework as afw
from repro.analysis.lint import feasible_settings
from repro.analysis.perfmodel import (
    ANALYTICAL_FEATURE_NAMES,
    analytical_features,
    estimate_kernel,
    estimate_source,
    extract_metrics,
)
from repro.codegen.cuda import generate_cuda
from repro.optimizations.combos import OC
from repro.optimizations.params import ParamSetting
from repro.stencil import get

WORD = 8


def _fixture(stencil_name: str, oc_name: str):
    """Deterministic (stencil, oc, setting, source) for a fixture id."""
    stencil = get(stencil_name)
    oc = OC.parse(oc_name)
    setting = feasible_settings(stencil, oc, 1, 0)[0]
    return stencil, oc, setting, generate_cuda(stencil, oc, setting)


# Hand-computed golden expectations for seed-0 feasible settings.  The
# derivations: taps = the stencil's offset set; extents = per-axis
# radius; write volume = one word per grid point; smem bytes =
# queue_planes x footprint cells x word; launches = TIME_STEPS /
# temporal_steps; footprint innermost = covered x-range + 2 x halo
# (halo widens to extent x temporal depth under temporal blocking).
GOLDEN = {
    ("star2d1r", "naive"): dict(
        taps=5, extents=(1, 1), scheme="cache", coverage=(32, 4),
        launches=8, n_blocks=524288, threads_per_block=128,
        smem_per_block=0, read_amplification=3.0, coalescing=1.0,
    ),
    ("star2d1r", "ST"): dict(
        taps=5, extents=(1, 1), scheme="register-stream",
        coverage=(8192, 256), stream_axis=0, stream_iters=4096,
        launches=8, n_blocks=32, threads_per_block=256,
        smem_per_block=0, read_amplification=1.0,
    ),
    ("star2d1r", "ST_RT"): dict(
        taps=5, extents=(1, 1), scheme="smem-stream",
        coverage=(128, 1024), stream_axis=1, stream_iters=256,
        retimed=True, launches=8, n_blocks=512,
        smem_queue_planes=2, smem_footprint=(130,),
        smem_per_block=2 * 130 * WORD, coalescing=1.0,
    ),
    ("star2d1r", "ST_RT_TB"): dict(
        taps=5, extents=(1, 1), scheme="smem-stream",
        stream_axis=1, retimed=True, temporal_steps=2, launches=4,
        smem_queue_planes=4, smem_footprint=(132,),
        smem_per_block=4 * 132 * WORD,
    ),
    ("box2d1r", "naive"): dict(
        taps=9, extents=(1, 1), scheme="cache", coverage=(256, 2),
        launches=8, n_blocks=131072, threads_per_block=512,
        smem_per_block=0, read_amplification=3.0, coalescing=1.0,
    ),
    ("box2d1r", "ST"): dict(
        taps=9, extents=(1, 1), scheme="smem-stream",
        stream_axis=1, stream_iters=4096, launches=8,
        smem_queue_planes=3, smem_footprint=(258,),
        smem_per_block=3 * 258 * WORD,
    ),
    ("box2d1r", "ST_RT"): dict(
        taps=9, extents=(1, 1), scheme="register-stream",
        stream_axis=0, retimed=True, launches=8, smem_per_block=0,
    ),
    ("box2d1r", "ST_RT_TB"): dict(
        taps=9, extents=(1, 1), scheme="smem-stream",
        stream_axis=0, retimed=True, temporal_steps=2, launches=4,
        smem_queue_planes=4, smem_footprint=(20,),
        smem_per_block=4 * 20 * WORD,
    ),
    ("star3d1r", "naive"): dict(
        taps=7, extents=(1, 1, 1), scheme="cache", coverage=(16, 2, 8),
        launches=8, n_blocks=524288, threads_per_block=256,
        smem_per_block=0, read_amplification=3.0,
    ),
    ("star3d1r", "ST"): dict(
        taps=7, extents=(1, 1, 1), scheme="smem-stream",
        stream_axis=2, stream_iters=512, launches=8,
        smem_queue_planes=3, smem_footprint=(258, 4),
        smem_per_block=3 * 258 * 4 * WORD, coalescing=1.0,
    ),
    ("star3d1r", "ST_RT"): dict(
        taps=7, extents=(1, 1, 1), scheme="register-stream",
        stream_axis=1, retimed=True, launches=8, smem_per_block=0,
    ),
    ("star3d1r", "ST_RT_TB"): dict(
        taps=7, extents=(1, 1, 1), scheme="smem-stream",
        stream_axis=0, retimed=True, temporal_steps=2, launches=4,
        smem_queue_planes=4, smem_footprint=(132, 8),
        smem_per_block=4 * 132 * 8 * WORD,
    ),
}


class TestGoldenMetrics:
    @pytest.mark.parametrize(
        "stencil_name,oc_name", sorted(GOLDEN), ids="-".join
    )
    def test_fixture(self, stencil_name, oc_name):
        stencil, _, _, source = _fixture(stencil_name, oc_name)
        m = extract_metrics(source)
        expected = GOLDEN[(stencil_name, oc_name)]
        for key, want in expected.items():
            got = len(m.taps) if key == "taps" else getattr(m, key)
            assert got == want, f"{key}: {got} != {want}"
        # Cross-cutting invariants, derivable without the source:
        # one word written per grid point, and the per-block coverage
        # tiles the grid exactly.
        points = 1.0
        for d in m.dims:
            points *= d
        assert m.write_bytes == WORD * points
        covered = m.n_blocks
        for c in m.coverage:
            covered *= c
        assert covered == points

    def test_taps_match_stencil_offsets(self):
        for name in ("star2d1r", "box2d1r", "star3d1r"):
            stencil, _, _, source = _fixture(name, "naive")
            m = extract_metrics(source)
            assert set(m.taps) == set(stencil.offsets)

    def test_extents_are_per_axis_radii(self):
        stencil = get("star2d3r")
        source = generate_cuda(
            stencil, OC.parse("naive"), ParamSetting(block_x=64, block_y=4)
        )
        m = extract_metrics(source)
        assert m.extents == (3, 3)
        assert m.scheme == "cache"
        assert m.read_amplification == 1 + 2 * 3


class TestEstimates:
    def test_estimate_source_equals_estimate_kernel(self):
        stencil, oc, setting, source = _fixture("star2d1r", "ST_RT")
        a = estimate_source(source, "V100")
        b = estimate_kernel(stencil, oc, setting, "V100")
        assert a.time_ms == b.time_ms
        assert a.to_dict() == b.to_dict()

    def test_components_sum_into_time(self):
        _, _, _, source = _fixture("star3d1r", "ST")
        est = estimate_source(source, "A100")
        assert est.time_ms > 0
        # The roofline-style composition is bounded below by its
        # slowest phase and above by the serial sum plus overheads.
        phases = [est.dram_ms, est.l2_ms, est.smem_ms, est.compute_ms]
        assert est.time_ms >= max(phases) * 0.9
        assert 0.0 < est.occupancy <= 1.0

    def test_gpu_ordering_is_sane(self):
        stencil, oc, setting, _ = _fixture("star2d1r", "naive")
        t = {
            gpu: estimate_kernel(stencil, oc, setting, gpu).time_ms
            for gpu in ("P100", "V100", "A100")
        }
        assert t["A100"] < t["V100"] < t["P100"]


def _estimate_once(args):
    """Module-level worker: spawn-picklable estimate for one fixture."""
    stencil_name, oc_name, gpu = args
    stencil, oc, setting, _ = _fixture(stencil_name, oc_name)
    est = estimate_kernel(stencil, oc, setting, gpu)
    return est.time_ms, est.to_dict()


class TestDeterminism:
    CONFIGS = [
        ("star2d1r", "ST_RT", "V100"),
        ("box2d1r", "naive", "A100"),
        ("star3d1r", "ST_RT_TB", "P100"),
    ]

    def test_repeated_runs_are_bit_identical(self):
        for cfg in self.CONFIGS:
            first = _estimate_once(cfg)
            for _ in range(3):
                assert _estimate_once(cfg) == first

    @pytest.mark.parametrize("workers", [1, 2])
    def test_identical_across_worker_counts(self, workers):
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(workers) as pool:
            results = pool.map(_estimate_once, self.CONFIGS)
        expected = [_estimate_once(cfg) for cfg in self.CONFIGS]
        assert results == expected


class TestParseCache:
    def test_hits_and_misses_count(self):
        afw.clear_parse_cache()
        _, _, _, source = _fixture("star2d1r", "naive")
        u1 = afw.parse_unit_cached(source)
        u2 = afw.parse_unit_cached(source)
        assert u1 is u2
        info = afw.parse_cache_info()
        assert info["misses"] == 1 and info["hits"] == 1
        assert info["size"] == 1
        assert info["hit_rate"] == 0.5

    def test_distinct_sources_miss(self):
        afw.clear_parse_cache()
        _, _, _, a = _fixture("star2d1r", "naive")
        _, _, _, b = _fixture("box2d1r", "naive")
        afw.parse_unit_cached(a)
        afw.parse_unit_cached(b)
        assert afw.parse_cache_info()["misses"] == 2

    def test_capacity_evicts_oldest(self, monkeypatch):
        afw.clear_parse_cache()
        monkeypatch.setattr(afw, "PARSE_CACHE_CAPACITY", 2)
        sources = [
            _fixture(name, "naive")[3]
            for name in ("star2d1r", "box2d1r", "star2d2r")
        ]
        for s in sources:
            afw.parse_unit_cached(s)
        assert afw.parse_cache_info()["size"] == 2
        # The oldest entry was evicted: re-parsing it is a miss again.
        afw.parse_unit_cached(sources[0])
        assert afw.parse_cache_info()["misses"] == 4

    def test_clear_resets(self):
        afw.clear_parse_cache()
        info = afw.parse_cache_info()
        assert info == {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "capacity": afw.PARSE_CACHE_CAPACITY,
            "hit_rate": 0.0,
        }


class TestAnalyticalFeatures:
    def test_vector_width_and_finiteness(self):
        stencil, oc, setting, _ = _fixture("star2d1r", "ST_RT")
        v = analytical_features(stencil, oc, setting, "V100")
        assert len(v) == len(ANALYTICAL_FEATURE_NAMES)
        assert all(x == x and abs(x) < 1e9 for x in v)
        assert v[-1] == 0.0  # crash flag clear

    def test_rejected_configuration_sets_crash_flag(self):
        stencil = get("star2d3r")
        oc = OC.parse("ST_RT_TB")
        # Deep temporal halo over a tiny covered range: the launch
        # check must reject it, and the feature vector flags it.
        bad = ParamSetting(
            block_x=16, use_smem=1, stream_dim=2, temporal_steps=4
        )
        v = analytical_features(stencil, oc, bad, "V100")
        assert v[-1] == 1.0
        assert all(x == 0.0 for x in v[:-1])
