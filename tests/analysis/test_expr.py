"""Tests for the expression layer: lexer, parser, evaluators, guards."""

import pytest

from repro.analysis import expr as E


class TestParse:
    def test_precedence(self):
        node = E.parse_expr("1 + 2 * 3")
        assert isinstance(node, E.Bin) and node.op == "+"
        assert node.rhs == E.Bin("*", E.Num(2), E.Num(3))

    def test_parens_override_precedence(self):
        node = E.parse_expr("(1 + 2) * 3")
        assert isinstance(node, E.Bin) and node.op == "*"

    def test_negative_literal_folds(self):
        assert E.parse_expr("-3") == E.Num(-3)

    def test_dotted_builtin_is_one_name(self):
        assert E.parse_expr("threadIdx.x") == E.Name("threadIdx.x")

    def test_call(self):
        node = E.parse_expr("min(a + 1, b)")
        assert isinstance(node, E.Call)
        assert node.func == "min" and len(node.args) == 2

    def test_index_chain(self):
        node = E.parse_expr("tile[i][j + 1]")
        assert isinstance(node, E.Index)
        assert node.base == E.Name("tile") and len(node.indices) == 2

    def test_comparison_conjunction(self):
        node = E.parse_expr("x >= 1 && x < NX - 1")
        assert isinstance(node, E.Bin) and node.op == "&&"
        assert len(E.conjuncts(node)) == 2

    def test_names_in(self):
        assert E.names_in(E.parse_expr("a * NX + min(b, 3)")) == {"a", "NX", "b"}

    def test_junk_raises(self):
        with pytest.raises(E.ExprError):
            E.parse_expr("a @ b")
        with pytest.raises(E.ExprError):
            E.parse_expr("1 +")
        with pytest.raises(E.ExprError):
            E.parse_expr("(a")


class TestEvalConst:
    def test_macro_env(self):
        node = E.parse_expr("(NX + BLOCK_X - 1) / BLOCK_X")
        assert E.eval_const(node, {"NX": 100, "BLOCK_X": 32}) == 4

    def test_c_integer_division_truncates(self):
        assert E.eval_const(E.parse_expr("7 / 2")) == 3

    def test_min_max_calls(self):
        assert E.eval_const(E.parse_expr("min(3, max(1, 5))")) == 3

    def test_unknown_name_is_none(self):
        assert E.eval_const(E.parse_expr("NX + 1")) is None

    def test_division_by_zero_is_none(self):
        assert E.eval_const(E.parse_expr("1 / 0")) is None


class TestInterval:
    def test_arithmetic(self):
        a, one = E.Interval(0, 31), E.Interval(1, 1)
        assert a + one == E.Interval(1, 32)
        assert a - one == E.Interval(-1, 30)
        assert -one == E.Interval(-1, -1)
        assert a * E.Interval(2, 2) == E.Interval(0, 62)

    def test_zero_times_infinity_is_zero(self):
        assert E.Interval(0, E.INF) * E.Interval(2, 2) == E.Interval(0, E.INF)

    def test_within(self):
        assert E.Interval(1, 5).within(0, 5)
        assert not E.Interval(1, 6).within(0, 5)

    def test_meet_union(self):
        assert E.Interval(0, 4).meet(E.Interval(5, 9)) is None
        assert E.Interval(0, 4).meet(E.Interval(3, 9)) == E.Interval(3, 4)
        assert E.Interval(0, 4).union(E.Interval(5, 9)) == E.Interval(0, 9)

    def test_point_division(self):
        assert E.Interval(0, 63).div(E.Interval(32, 32)) == E.Interval(0, 1)

    def test_empty_interval_raises(self):
        with pytest.raises(E.ExprError):
            E.Interval(2, 1)


class TestEvalInterval:
    def test_launch_coordinate_range(self):
        env = {"threadIdx.x": E.Interval(0, 31), "blockIdx.x": E.Interval(0, 7)}
        node = E.parse_expr("blockIdx.x * BLOCK_X + threadIdx.x")
        assert E.eval_interval(node, env, {"BLOCK_X": 32}) == E.Interval(0, 255)

    def test_min_clamps_upper_end(self):
        env = {"z": E.Interval(0, 100)}
        rng = E.eval_interval(E.parse_expr("min(z + 2, 63)"), env, {})
        assert rng == E.Interval(2, 63)

    def test_unknown_is_top(self):
        assert E.eval_interval(E.parse_expr("mystery"), {}, {}) == E.Interval.top()


class TestGuards:
    def test_refine_env_narrows_by_conjuncts(self):
        env = {"x": E.Interval(0, 8191)}
        cond = E.parse_expr("x >= 2 && x < NX - 2")
        refined = E.refine_env(cond, env, {"NX": 8192})
        assert refined["x"] == E.Interval(2, 8189)

    def test_refine_env_ignores_non_name_conjuncts(self):
        env = {"x": E.Interval(0, 10)}
        refined = E.refine_env(E.parse_expr("f(x) < 3 && x >= 4"), env, {})
        assert refined["x"] == E.Interval(4, 10)

    def test_guard_bounds_syntactic(self):
        cond = E.parse_expr("x >= 1 && x < NX - 1 && y >= 2 && y < NY - 2")
        bounds = E.guard_bounds(cond, {"NX": 64, "NY": 32})
        assert bounds["x"] == (1, 63)
        assert bounds["y"] == (2, 30)

    def test_guard_bounds_open_side(self):
        bounds = E.guard_bounds(E.parse_expr("x >= 1"), {})
        assert bounds["x"] == (1, None)
