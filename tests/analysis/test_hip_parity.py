"""HIP sources through the analysis stack: parse, lint, perfmodel.

The static analyzer and the performance model must treat an emitted
HIP kernel exactly like its CUDA twin: same IR, same findings, same
metric extraction -- only the recorded dialect differs.  On AMD
targets the source-level estimate must agree with the simulator's
profile-level timing, mirroring the NVIDIA fidelity contract of
``test_perfmodel``.
"""

import math

import pytest

from repro.analysis.framework import Analyzer, build_context
from repro.analysis.lint import feasible_settings, lint_kernel
from repro.analysis.perfmodel import estimate_kernel, estimate_source
from repro.codegen import generate_cuda, generate_hip
from repro.errors import KernelLaunchError
from repro.gpu.simulator import GPUSimulator
from repro.optimizations.combos import ALL_OCS, OC_BY_NAME
from repro.optimizations.params import ParamSetting
from repro.stencil import star
from repro.stencil.library import get

ST_RT = OC_BY_NAME["ST_RT"]
SETTING = ParamSetting(block_x=64, block_y=4, stream_dim=2, use_smem=1)


class TestHipParsing:
    def test_context_records_dialect_and_width(self):
        src = generate_hip(star(2, 1), ST_RT, SETTING)
        ctx = build_context(src, gpu="MI100")
        assert ctx.dialect == "hip"
        assert ctx.warp_size == 64
        cuda_ctx = build_context(generate_cuda(star(2, 1), ST_RT, SETTING))
        assert cuda_ctx.dialect == "cuda" and cuda_ctx.warp_size == 32

    def test_hip_launch_recovers_kernel(self):
        src = generate_hip(star(2, 1), ST_RT, SETTING)
        ctx = build_context(src)
        assert ctx.unit.host.launched_kernel == ctx.unit.kernels[0].name

    def test_findings_match_cuda(self):
        s = star(2, 1)
        cuda_report = Analyzer().analyze(
            generate_cuda(s, ST_RT, SETTING),
            stencil=s, oc=ST_RT, setting=SETTING,
        )
        hip_report = Analyzer().analyze(
            generate_hip(s, ST_RT, SETTING),
            stencil=s, oc=ST_RT, setting=SETTING, gpu="MI100",
        )
        assert [f.rule for f in cuda_report.findings] == [
            f.rule for f in hip_report.findings
        ]

    def test_lint_kernel_hip_has_no_errors(self):
        source, report = lint_kernel(
            get("star2d1r"), "ST_RT", SETTING, dialect="hip", gpu="MI100"
        )
        assert "// dialect: hip" in source
        assert not report.errors


class TestEstimateParity:
    def test_hip_estimate_equals_cuda_estimate(self):
        # The metric extraction sees identical kernel bodies, so the
        # composed estimate on a given GPU must agree exactly.
        s = get("star2d1r")
        cuda = estimate_source(generate_cuda(s, ST_RT, SETTING), "MI100")
        hip = estimate_source(generate_hip(s, ST_RT, SETTING), "MI100")
        assert cuda.time_ms == hip.time_ms

    @pytest.mark.parametrize("gpu", ("MI100", "MI250"))
    def test_estimate_tracks_simulator_on_amd(self, gpu):
        # Same fidelity sweep as the NVIDIA perfmodel contract: over the
        # library stencil's feasible space the static estimate matches
        # the simulator's noise-free time to float accuracy.
        s = get("star2d1r")
        sim = GPUSimulator(gpu, sigma=0.0)
        checked = 0
        for oc in ALL_OCS:
            for setting in feasible_settings(s, oc, 1, seed=3):
                # feasible_settings screens on the NVIDIA default; a
                # setting over this device's limits must crash both
                # paths identically.
                try:
                    est = estimate_kernel(s, oc, setting, gpu)
                except KernelLaunchError:
                    with pytest.raises(KernelLaunchError):
                        sim.time(s, oc, setting)
                    continue
                ref = sim.time(s, oc, setting)
                assert math.isfinite(est.time_ms)
                assert est.time_ms == pytest.approx(ref, rel=1e-6)
                checked += 1
        assert checked >= 20
