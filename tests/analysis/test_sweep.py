"""Sweep-level lint tests: the generated library must analyze clean,
and seeded drift (the historical guard bug, a perturbed model claim)
must be caught."""

import dataclasses

import pytest

from repro.analysis.lint import feasible_settings, lint_kernel, lint_sweep, worst_severity
from repro.analysis.findings import Severity
from repro.codegen.cuda import CudaKernelGenerator
from repro.optimizations import kernelmodel
from repro.optimizations.combos import ALL_OCS, OC
from repro.stencil import library
from repro.stencil.stencil import Stencil

#: One-dimensional-in-spirit stencil: taps only along x, extent 0 on y.
LINE2D = Stencil.from_points([(-1, 0), (0, 0), (1, 0)], name="line2d1r")

#: 1-D-spirit, isotropic 2-D, asymmetric-shape 2-D, and 3-D coverage.
SAMPLE_STENCILS = (
    LINE2D,
    library.get("star2d1r"),
    library.get("box2d1r"),
    library.get("star3d2r"),
)


@pytest.mark.parametrize("oc", list(ALL_OCS), ids=lambda oc: oc.name)
def test_generated_kernels_lint_clean(oc):
    summary = lint_sweep(
        stencils=SAMPLE_STENCILS, ocs=[oc], n_settings=2, seed=7
    )
    assert summary.records or summary.skipped
    assert summary.errors == 0, summary.format_text()
    assert summary.ok


def test_worst_severity_over_clean_naive_sweep():
    summary = lint_sweep(
        stencils=[library.get("star2d1r")], ocs=[OC.parse("naive")]
    )
    worst = worst_severity(summary)
    assert worst is None or worst is not Severity.ERROR


class TestGuardRegression:
    """Satellite: the per-axis guard fix, locked in by the analyzer.

    The historical ``_guard`` clipped every axis by the uniform Chebyshev
    ``order``; on anisotropic stencils that over-guards the short axes,
    silently skipping interior points the model prices.  BOUNDS002 must
    flag exactly that when the old behaviour is restored.
    """

    ANISO = Stencil.from_points(
        [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1), (0, 2), (0, -2)],
        name="aniso2d",
    )

    @staticmethod
    def _old_guard(self, coords):
        return " && ".join(
            f"{coords[d]} >= {self.stencil.order} && "
            f"{coords[d]} < N{'xyz'[d].upper()} - {self.stencil.order}"
            for d in range(self.ndim)
        )

    def test_fixed_guard_is_clean(self):
        setting = feasible_settings(self.ANISO, OC.parse("naive"), 1)[0]
        _, report = lint_kernel(self.ANISO, "naive", setting)
        assert report.ok

    def test_old_uniform_order_guard_is_flagged(self, monkeypatch):
        monkeypatch.setattr(CudaKernelGenerator, "_guard", self._old_guard)
        setting = feasible_settings(self.ANISO, OC.parse("naive"), 1)[0]
        _, report = lint_kernel(self.ANISO, "naive", setting)
        flagged = [f for f in report.errors if f.rule == "BOUNDS002"]
        assert flagged, report.findings
        assert "over-guarded" in flagged[0].message
        assert any(f.data and dict(f.data).get("axis") == 0 for f in flagged)

    def test_old_guard_fails_the_sweep(self, monkeypatch):
        monkeypatch.setattr(CudaKernelGenerator, "_guard", self._old_guard)
        summary = lint_sweep(
            stencils=[self.ANISO], ocs=[OC.parse("naive")], n_settings=1
        )
        assert not summary.ok
        assert worst_severity(summary) is Severity.ERROR


class TestModelDriftRegression:
    """Perturbing a kernelmodel claim must fail the lint loudly."""

    def test_perturbed_smem_claim_is_flagged(self, monkeypatch):
        stencil = library.get("star3d2r")
        oc = OC.parse("ST")
        setting = feasible_settings(stencil, oc, 1)[0]
        real = kernelmodel.build_profile

        def perturbed(stencil, oc, setting, grid=None):
            p = real(stencil, oc, setting, grid)
            return dataclasses.replace(p, smem_per_block=p.smem_per_block + 64)

        monkeypatch.setattr(kernelmodel, "build_profile", perturbed)
        _, report = lint_kernel(stencil, oc, setting)
        assert not report.ok
        assert any(f.rule == "RES001" for f in report.errors)


class TestDeterminism:
    def test_feasible_settings_are_deterministic(self):
        stencil = library.get("star2d2r")
        oc = OC.parse("ST_BM")
        a = feasible_settings(stencil, oc, 3, seed=11)
        b = feasible_settings(stencil, oc, 3, seed=11)
        assert [s.as_tuple() for s in a] == [s.as_tuple() for s in b]

    def test_seed_changes_settings(self):
        stencil = library.get("star2d2r")
        oc = OC.parse("ST_BM")
        a = feasible_settings(stencil, oc, 3, seed=11)
        b = feasible_settings(stencil, oc, 3, seed=12)
        assert [s.as_tuple() for s in a] != [s.as_tuple() for s in b]

    def test_summary_serializes(self):
        summary = lint_sweep(
            stencils=[library.get("star2d1r")], ocs=[OC.parse("naive")]
        )
        payload = summary.to_dict()
        assert payload["kernels"] == len(summary.records)
        assert "records" in payload
        assert summary.to_json().startswith("{")
