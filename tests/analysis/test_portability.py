"""Unit tests for the cross-vendor transfer bench building blocks.

The full experiment lives behind ``tools/bench_portability.py``; here a
micro-campaign exercises the pieces cheaply: GBDT picks transferred to
an unseen AMD target, predictor-ranking picks, score averaging, and the
shape/regime bookkeeping of the document.
"""

import pytest

from repro.analysis.portability import (
    _bench_shape,
    _gbdt_picks,
    _mean_scores,
    _predictor_picks,
)
from repro.optimizations.combos import OC_BY_NAME
from repro.stencil.generator import generate_population


@pytest.fixture(scope="module")
def micro():
    """Tiny campaign spanning one NVIDIA source and two AMD devices."""
    from repro.profiling import run_campaign

    pop = generate_population(2, 3, seed=41)
    ocs = [OC_BY_NAME[n] for n in ("naive", "ST", "ST_RT", "CM", "TB")]
    train = run_campaign(
        pop[:2], gpus=("V100", "MI100", "MI210"), ocs=ocs,
        n_settings=1, seed=41,
    )
    test = run_campaign(
        pop[2:], gpus=("MI210",), ocs=ocs, n_settings=4, seed=42
    )
    return train, test


class TestShape:
    def test_quick_is_smaller(self):
        q, f = _bench_shape(True), _bench_shape(False)
        assert q["n_train"] < f["n_train"]
        assert len(q["target_gpus"]) <= len(f["target_gpus"])

    def test_roles_are_disjoint(self):
        for quick in (True, False):
            s = _bench_shape(quick)
            nvidia = set(s["nvidia_gpus"])
            targets = set(s["target_gpus"])
            assert s["amd_train_gpu"] not in nvidia | targets
            assert not nvidia & targets


class TestPicks:
    def test_gbdt_picks_transfer_to_amd(self, micro):
        train, test = micro
        picks = _gbdt_picks(train, "V100", test.stencils, seed=7)
        assert len(picks) == len(test.stencils)
        assert all(p in OC_BY_NAME for p in picks)

    def test_predictor_picks_are_valid_and_deterministic(self, micro):
        from repro.profiling.train import train_predictor_artifact

        train, test = micro
        art = train_predictor_artifact(
            train, gpus=("V100",), method="gbr", seed=7
        )
        a = _predictor_picks(art, test.stencils, "MI210", 2, seed=7)
        b = _predictor_picks(art, test.stencils, "MI210", 2, seed=7)
        assert a == b
        assert all(p in OC_BY_NAME for p in a)


class TestScores:
    def test_mean_scores_averages_fields(self):
        rows = [
            {"top1": 1.0, "near_optimal": 1.0, "geomean_slowdown": 1.0,
             "infeasible_picks": 0},
            {"top1": 0.0, "near_optimal": 0.5, "geomean_slowdown": 2.0,
             "infeasible_picks": 2},
        ]
        m = _mean_scores(rows)
        assert m["top1"] == 0.5
        assert m["near_optimal"] == 0.75
        assert m["geomean_slowdown"] == 1.5
        assert m["infeasible_picks"] == 1.0

    def test_score_picks_on_amd_oracle(self, micro):
        from repro.analysis.bench import _score_picks

        _, test = micro
        best = [p.best_oc for p in test.gpu_profiles("MI210")]
        perfect = _score_picks(test, "MI210", best)
        assert perfect["top1"] == 1.0
        assert perfect["geomean_slowdown"] == pytest.approx(1.0)
        worst = _score_picks(test, "MI210", ["naive"] * len(best))
        assert worst["geomean_slowdown"] >= 1.0
