"""Tests for findings, suppressions, baselines and reports."""

import pytest

from repro.analysis.findings import (
    Baseline,
    Finding,
    Report,
    Severity,
    Suppressions,
)


def make(rule="RACE001", severity=Severity.ERROR, message="boom", **kw):
    return Finding.make(rule, severity, message, **kw)


class TestFinding:
    def test_severity_rank_orders_error_first(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank

    def test_fingerprint_is_stable_and_line_insensitive(self):
        a = make(line=10, kernel="k")
        b = make(line=99, kernel="k")
        c = make(message="other", kernel="k")
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != c.fingerprint

    def test_format(self):
        f = make(line=7, kernel="stencil_naive_2d")
        assert f.format() == "[error] RACE001 stencil_naive_2d:L7: boom"

    def test_to_dict_round_trips_data(self):
        f = make(line=3, kernel="k", axis=1, size=64)
        d = f.to_dict()
        assert d["rule"] == "RACE001"
        assert d["span"] == {"line": 3, "end_line": 3}
        assert d["data"] == {"axis": 1, "size": 64}


class TestSuppressions:
    SOURCE = "\n".join(
        [
            "int a;",
            "double b;  // lint: disable=RACE001, BOUNDS001",
            "// lint: disable-file=PERF002",
            "int c;",
        ]
    )

    def test_line_suppression_covers_only_its_line(self):
        sup = Suppressions.scan(self.SOURCE)
        assert sup.covers(make(line=2))
        assert sup.covers(make("BOUNDS001", line=2))
        assert not sup.covers(make(line=4))
        assert not sup.covers(make("RES001", line=2))

    def test_file_suppression_covers_everywhere(self):
        sup = Suppressions.scan(self.SOURCE)
        assert sup.covers(make("PERF002", Severity.WARNING, line=1))
        assert sup.covers(make("PERF002", Severity.WARNING, line=4))


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = [make(kernel="k"), make("RES001", message="drift")]
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(str(path))
        loaded = Baseline.load(str(path))
        assert len(loaded) == 2
        assert findings[0] in loaded
        assert make("NEW001", message="fresh") not in loaded

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "fingerprints": []}')
        with pytest.raises(ValueError):
            Baseline.load(str(path))


class TestReport:
    def test_errors_and_warnings_partition(self):
        report = Report(
            findings=[
                make(),
                make("PERF001", Severity.WARNING),
                make("BOUNDS003", Severity.INFO),
            ]
        )
        assert [f.rule for f in report.errors] == ["RACE001"]
        assert [f.rule for f in report.warnings] == ["PERF001"]
        assert not report.ok

    def test_sorted_puts_errors_first(self):
        report = Report(
            findings=[make("PERF001", Severity.WARNING), make(line=5)]
        )
        assert [f.rule for f in report.sorted()] == ["RACE001", "PERF001"]

    def test_filtered_routes_suppressed_and_baselined(self):
        suppressed = make("RACE001", line=2)
        baselined = make("RES001", message="drift")
        fresh = make("BOUNDS001", message="oob")
        sup = Suppressions.scan("int a;\nint b;  // lint: disable=RACE001\n")
        base = Baseline.from_findings([baselined])
        report = Report.filtered([suppressed, baselined, fresh], sup, base)
        assert [f.rule for f in report.findings] == ["BOUNDS001"]
        assert [f.rule for f in report.suppressed] == ["RACE001"]
        assert [f.rule for f in report.baselined] == ["RES001"]
        assert not report.ok

    def test_ok_when_only_warnings(self):
        report = Report(findings=[make("PERF001", Severity.WARNING)])
        assert report.ok
