"""Shared fixtures for the serving-stack tests.

One small (but real) 2-D campaign is profiled once per session and
turned into selector/predictor artifacts; every test that needs a
trained model shares them.
"""

from __future__ import annotations

import pytest

from repro.profiling import run_campaign
from repro.profiling.train import (
    train_predictor_artifact,
    train_selector_artifact,
)
from repro.stencil.generator import generate_population

SEED = 21
GPUS = ("V100", "A100")


@pytest.fixture(scope="session")
def campaign2d():
    pop = generate_population(2, 8, seed=SEED)
    return run_campaign(pop, gpus=GPUS, n_settings=3, seed=SEED)


@pytest.fixture(scope="session")
def selector_artifact(campaign2d):
    return train_selector_artifact(campaign2d, "V100", seed=SEED)


@pytest.fixture(scope="session")
def predictor_artifact(campaign2d):
    return train_predictor_artifact(campaign2d, seed=SEED)
