"""The HTTP front end + stdlib client, over a real ephemeral-port server.

Spins up the actual ThreadingHTTPServer and talks to it through
:class:`ServeClient` (urllib): model-served selections, inline stencil
documents, batched requests, the heuristic-fallback path, time
predictions, clean 400s for client mistakes, and the ``/stats`` body.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ServiceError
from repro.serve import PredictionService
from repro.serve.client import ServeClient
from repro.serve.http import make_server, parse_stencil
from repro.stencil.library import get


@pytest.fixture(scope="module")
def live(selector_artifact, predictor_artifact):
    import threading

    service = PredictionService()
    service.install(selector_artifact, "sel@live")
    service.install(predictor_artifact, "pred@live")
    server = make_server(service)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield ServeClient(f"http://{host}:{port}"), service
    finally:
        server.shutdown()
        server.server_close()


class TestParseStencil:
    def test_library_name(self):
        assert parse_stencil("star2d2r").name == "star2d2r"

    def test_inline_document(self):
        s = get("star2d1r")
        doc = {"ndim": s.ndim, "offsets": [list(o) for o in sorted(s.offsets)]}
        assert parse_stencil(doc).offsets == s.offsets

    def test_unknown_name(self):
        with pytest.raises(ServiceError, match="unknown stencil"):
            parse_stencil("star9d9r")

    def test_wrong_type(self):
        with pytest.raises(ServiceError, match="library name"):
            parse_stencil(42)


class TestEndpoints:
    def test_healthz(self, live):
        client, _ = live
        assert client.healthz() == {"ok": True}

    def test_select_by_name(self, live):
        client, service = live
        r = client.select("star2d2r", "V100")
        assert r["source"] == "model"
        assert r["artifact"] == "sel@live"
        direct = service.select_one(get("star2d2r"), "V100")
        assert r["oc"] == direct.oc and r["class"] == direct.cls

    def test_select_inline_document(self, live):
        client, _ = live
        s = get("box2d1r")
        doc = {"ndim": s.ndim, "offsets": [list(o) for o in sorted(s.offsets)]}
        r = client.select(doc, "A100")
        assert r["oc"]

    def test_select_batch(self, live):
        client, service = live
        results = client.select_batch(
            [
                {"stencil": "star2d1r", "gpu": "V100"},
                {"stencil": "star3d1r", "gpu": "V100"},  # no 3d model
            ]
        )
        assert results[0]["source"] == "model"
        assert results[1]["source"] == "fallback"

    def test_predict(self, live):
        client, service = live
        t = client.predict(
            "star2d1r", "ST_RT", "A100", {"block_x": 64, "block_y": 8}
        )
        assert t > 0
        from repro.serve.service import setting_from_dict

        direct = service.predict_one(
            get("star2d1r"),
            "ST_RT",
            setting_from_dict({"block_x": 64, "block_y": 8}),
            "A100",
        )
        assert t == pytest.approx(direct)

    def test_predict_batch(self, live):
        client, _ = live
        times = client.predict_batch(
            [
                {"stencil": "star2d1r", "oc": "naive", "gpu": "V100"},
                {"stencil": "star2d2r", "oc": "ST", "gpu": "2080Ti"},
            ]
        )
        assert len(times) == 2 and all(t > 0 for t in times)


class TestErrors:
    def test_unknown_stencil_is_400(self, live):
        client, _ = live
        with pytest.raises(ServiceError, match="HTTP 400"):
            client.select("no-such", "V100")

    def test_unknown_gpu_is_400(self, live):
        client, _ = live
        with pytest.raises(ServiceError, match="unknown GPU"):
            client.select("star2d1r", "H100")

    def test_unknown_path_is_404(self, live):
        client, _ = live
        with pytest.raises(ServiceError, match="HTTP 404"):
            client._request("/v2/select", {})

    def test_bad_json_body_is_400(self, live):
        client, _ = live
        req = urllib.request.Request(
            client.base_url + "/v1/select",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=5)
        assert exc.value.code == 400
        assert "error" in json.loads(exc.value.read().decode())

    def test_missing_body_is_400(self, live):
        client, _ = live
        req = urllib.request.Request(
            client.base_url + "/v1/select", data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=5)
        assert exc.value.code == 400
        body = json.loads(exc.value.read().decode())
        assert "missing request body" in body["error"]

    def test_cannot_reach_dead_server(self):
        client = ServeClient("http://127.0.0.1:9", timeout_s=1)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()


class TestStats:
    def test_stats_body(self, live):
        client, service = live
        client.select("star2d1r", "V100")
        stats = client.stats()
        assert stats["requests"]["select"] >= 1
        assert "feature_cache" in stats
        assert "latency" in stats
        assert stats["capabilities"]["selectors"]["2d/V100"] == "sel@live"
        assert stats["capabilities"]["degraded"] == []
