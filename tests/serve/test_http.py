"""The HTTP front end + stdlib client, over a real ephemeral-port server.

Spins up the actual ThreadingHTTPServer and talks to it through
:class:`ServeClient` (urllib): model-served selections, inline stencil
documents, batched requests, the heuristic-fallback path, time
predictions, clean 400s for client mistakes, and the ``/stats`` body.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ServiceError
from repro.serve import PredictionService
from repro.serve.client import ServeClient
from repro.serve.http import make_server, parse_stencil
from repro.stencil.library import get


@pytest.fixture(scope="module")
def live(selector_artifact, predictor_artifact):
    import threading

    service = PredictionService()
    service.install(selector_artifact, "sel@live")
    service.install(predictor_artifact, "pred@live")
    server = make_server(service)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield ServeClient(f"http://{host}:{port}"), service
    finally:
        server.shutdown()
        server.server_close()


class TestParseStencil:
    def test_library_name(self):
        assert parse_stencil("star2d2r").name == "star2d2r"

    def test_inline_document(self):
        s = get("star2d1r")
        doc = {"ndim": s.ndim, "offsets": [list(o) for o in sorted(s.offsets)]}
        assert parse_stencil(doc).offsets == s.offsets

    def test_unknown_name(self):
        with pytest.raises(ServiceError, match="unknown stencil"):
            parse_stencil("star9d9r")

    def test_wrong_type(self):
        with pytest.raises(ServiceError, match="library name"):
            parse_stencil(42)


class TestEndpoints:
    def test_healthz(self, live):
        client, _ = live
        assert client.healthz() == {
            "ok": True, "status": "ok", "queue_depth": 0
        }

    def test_select_by_name(self, live):
        client, service = live
        r = client.select("star2d2r", "V100")
        assert r["source"] == "model"
        assert r["artifact"] == "sel@live"
        direct = service.select_one(get("star2d2r"), "V100")
        assert r["oc"] == direct.oc and r["class"] == direct.cls

    def test_select_inline_document(self, live):
        client, _ = live
        s = get("box2d1r")
        doc = {"ndim": s.ndim, "offsets": [list(o) for o in sorted(s.offsets)]}
        r = client.select(doc, "A100")
        assert r["oc"]

    def test_select_batch(self, live):
        client, service = live
        results = client.select_batch(
            [
                {"stencil": "star2d1r", "gpu": "V100"},
                {"stencil": "star3d1r", "gpu": "V100"},  # no 3d model
            ]
        )
        assert results[0]["source"] == "model"
        assert results[1]["source"] == "fallback"

    def test_predict(self, live):
        client, service = live
        t = client.predict(
            "star2d1r", "ST_RT", "A100", {"block_x": 64, "block_y": 8}
        )
        assert t > 0
        from repro.serve.service import setting_from_dict

        direct = service.predict_one(
            get("star2d1r"),
            "ST_RT",
            setting_from_dict({"block_x": 64, "block_y": 8}),
            "A100",
        )
        assert t == pytest.approx(direct)

    def test_predict_batch(self, live):
        client, _ = live
        times = client.predict_batch(
            [
                {"stencil": "star2d1r", "oc": "naive", "gpu": "V100"},
                {"stencil": "star2d2r", "oc": "ST", "gpu": "2080Ti"},
            ]
        )
        assert len(times) == 2 and all(t > 0 for t in times)


class TestErrors:
    def test_unknown_stencil_is_400(self, live):
        client, _ = live
        with pytest.raises(ServiceError, match="HTTP 400"):
            client.select("no-such", "V100")

    def test_unknown_gpu_is_400(self, live):
        client, _ = live
        with pytest.raises(ServiceError, match="unknown GPU"):
            client.select("star2d1r", "H100")

    def test_unknown_path_is_404(self, live):
        client, _ = live
        with pytest.raises(ServiceError, match="HTTP 404"):
            client._request("/v2/select", {})

    def test_bad_json_body_is_400(self, live):
        client, _ = live
        req = urllib.request.Request(
            client.base_url + "/v1/select",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=5)
        assert exc.value.code == 400
        assert "error" in json.loads(exc.value.read().decode())

    def test_missing_body_is_400(self, live):
        client, _ = live
        req = urllib.request.Request(
            client.base_url + "/v1/select", data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=5)
        assert exc.value.code == 400
        body = json.loads(exc.value.read().decode())
        assert "missing request body" in body["error"]

    def test_cannot_reach_dead_server(self):
        from repro.serve.client import ClientRetryPolicy

        client = ServeClient(
            "http://127.0.0.1:9",
            timeout_s=1,
            retry=ClientRetryPolicy(max_retries=0),
        )
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()


class TestBodyBounds:
    """Content-Length policing happens before any body byte is read."""

    def _raw(self, live, headers: "dict[str, str]"):
        """POST /v1/select with hand-rolled headers; (status, body)."""
        import http.client

        client, _ = live
        host, port = client.base_url.rsplit("//", 1)[1].split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=5)
        try:
            conn.putrequest("POST", "/v1/select")
            for k, v in headers.items():
                conn.putheader(k, v)
            conn.endheaders()
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read().decode())
        finally:
            conn.close()

    def test_missing_content_length_is_413(self, live):
        status, body = self._raw(live, {"Content-Type": "application/json"})
        assert status == 413
        assert "Content-Length" in body["error"]

    def test_malformed_content_length_is_400(self, live):
        status, body = self._raw(live, {"Content-Length": "banana"})
        assert status == 400
        assert "malformed Content-Length" in body["error"]

    def test_oversized_content_length_is_413(self, live):
        from repro.serve.http import MAX_BODY_BYTES

        status, body = self._raw(
            live, {"Content-Length": str(MAX_BODY_BYTES + 1)}
        )
        assert status == 413
        assert "exceeds" in body["error"]


class TestOverloadHTTP:
    """A full-queue shed surfaces as 503 + Retry-After on the wire."""

    @pytest.fixture()
    def overloaded(self, selector_artifact):
        import threading

        from repro.serve import AdmissionPolicy

        service = PredictionService(
            admission=AdmissionPolicy(max_queue=1, retry_after_s=0.123),
            max_wait_s=0.0,
        )
        service.install(selector_artifact, "sel@ovl")
        stall = threading.Event()
        inner = service._select_batcher.batch_fn

        def stalled(values):
            stall.wait(10.0)
            return inner(values)

        service._select_batcher.batch_fn = stalled
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield f"http://{host}:{port}", service, stall
        finally:
            stall.set()
            server.shutdown()
            server.server_close()

    def test_shed_is_503_with_retry_after(self, overloaded):
        import threading
        import time

        base, service, stall = overloaded
        body = json.dumps({"stencil": "star2d1r", "gpu": "V100"}).encode()

        def fire():
            req = urllib.request.Request(
                base + "/v1/select", data=body,
                headers={"Content-Type": "application/json"},
            )
            urllib.request.urlopen(req, timeout=10)

        first = threading.Thread(target=fire, daemon=True)
        first.start()
        deadline = time.monotonic() + 5.0
        while service.admission.depth == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        req = urllib.request.Request(
            base + "/v1/select", data=body,
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 503
        assert exc.value.headers["Retry-After"] == "0.123"
        payload = json.loads(exc.value.read().decode())
        assert payload["kind"] == "queue_full"
        stall.set()
        first.join(timeout=10.0)

    def test_healthz_reports_overloaded(self, overloaded):
        base, service, _ = overloaded
        service.admission.admit()
        try:
            doc = ServeClient(base).healthz()
            assert doc["status"] == "overloaded" and doc["ok"] is True
        finally:
            service.admission.release()

    def test_client_retry_rides_out_shed(self, overloaded):
        from repro.serve.client import ClientRetryPolicy

        base, service, stall = overloaded
        service.admission.admit()  # queue full: first attempt sheds

        sleeps = []

        def sleep_and_free(s):
            sleeps.append(s)
            service.admission.release()  # capacity returns mid-backoff

        client = ServeClient(
            base,
            retry=ClientRetryPolicy(max_retries=3),
            sleep=sleep_and_free,
        )
        stall.set()  # the worker itself is healthy for this test
        r = client.select("star2d1r", "V100")
        assert r["source"] == "model"
        assert sleeps == [pytest.approx(0.123)]  # honored Retry-After


class TestDrain:
    def test_drain_waits_for_in_flight(self, selector_artifact):
        import threading
        import time

        from repro.serve.http import drain

        service = PredictionService(max_wait_s=0.0)
        service.install(selector_artifact, "sel@drain")
        inner = service._select_batcher.batch_fn

        def slow(values):
            time.sleep(0.2)
            return inner(values)

        service._select_batcher.batch_fn = slow
        server = make_server(service)
        host, port = server.server_address[:2]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        results = []

        def fire():
            client = ServeClient(f"http://{host}:{port}")
            results.append(client.select("star2d1r", "V100"))

        t = threading.Thread(target=fire, daemon=True)
        t.start()
        deadline = time.monotonic() + 5.0
        while server.in_flight == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert drain(server, timeout_s=5.0) is True
        t.join(timeout=5.0)
        # The in-flight request completed despite the shutdown.
        assert results and results[0]["source"] == "model"
        assert server.in_flight == 0


class TestStats:
    def test_stats_body(self, live):
        client, service = live
        client.select("star2d1r", "V100")
        stats = client.stats()
        assert stats["requests"]["select"] >= 1
        assert "feature_cache" in stats
        assert "latency" in stats
        assert stats["capabilities"]["selectors"]["2d/V100"] == "sel@live"
        assert stats["capabilities"]["degraded"] == []
