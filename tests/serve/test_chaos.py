"""The chaos harness end to end, on the shared session artifacts.

One quick scripted run covers the whole robustness story: overload
sheds with 503-class errors only, the breaker opens on corrupt
publishes and pins the last good model, the hot swap lands under live
traffic with zero failures, and the poisoned model rolls back.
"""

import pytest

from repro.errors import ArtifactError
from repro.serve.chaos import (
    ChaosConfig,
    ChaosRegistry,
    chaos_passed,
    run_chaos,
)


@pytest.fixture(scope="module")
def report(tmp_path_factory, selector_artifact, predictor_artifact):
    cfg = ChaosConfig.make(quick=True, seed=13)
    workdir = tmp_path_factory.mktemp("chaos")
    return run_chaos(selector_artifact, predictor_artifact, cfg, workdir)


class TestChaosRegistry:
    def test_corrupt_publish_fails_load(self, tmp_path, selector_artifact):
        reg = ChaosRegistry(tmp_path / "models")
        reg.publish(selector_artifact, "sel")
        v = reg.publish_corrupt("sel")
        assert reg.latest("sel") == v  # the tag moved...
        with pytest.raises(ArtifactError):  # ...but the load fails closed
            reg.load("sel")

    def test_tear_latest_breaks_reads(self, tmp_path, selector_artifact):
        reg = ChaosRegistry(tmp_path / "models")
        reg.publish(selector_artifact, "sel")
        reg.tear_latest("sel")
        with pytest.raises(ArtifactError, match="torn tag"):
            reg.latest("sel")

    def test_load_delay_injection(self, tmp_path, selector_artifact):
        import time

        reg = ChaosRegistry(tmp_path / "models")
        reg.publish(selector_artifact, "sel")
        reg.load_delay_s = 0.05
        t0 = time.perf_counter()
        reg.load("sel")
        assert time.perf_counter() - t0 >= 0.05


class TestScenario:
    def test_all_invariants_hold(self, report):
        assert chaos_passed(report) == []

    def test_zero_non_503_errors(self, report):
        assert report["non_503_errors"] == 0
        assert report["availability_excluding_shed"] == 1.0

    def test_overload_shed_something(self, report):
        t = report["totals"]
        assert t["shed"] + t["deadline"] >= 1
        assert report["p99_under_overload_ms"] > 0

    def test_breaker_story(self, report):
        b = report["breaker"]
        assert b["opened"] and b["pinned_last_good"] and b["recovered"]
        assert b["final_state"] == "closed"

    def test_rollback_happened(self, report):
        assert report["reload"]["rollbacks"] >= 1
        assert report["reload"]["rejected"]  # the bad version stays out

    def test_swap_had_zero_failures(self, report):
        assert report["zero_failed_during_swap"] is True
        swap = report["phases"]["swap"]
        assert swap["error"] == 0 and swap["client_error"] == 0
        assert any(
            e["phase"] == "swap" and e["action"] == "swapped"
            for e in report["events"]
        )

    def test_feature_cache_stressed(self, report):
        # Many distinct stencils flowed through: the cache grew well
        # past a handful of entries.
        cache = report["stats"]["feature_cache"]
        assert cache["size"] >= report["config"]["n_stencils"]
