"""Model serialization: save -> load must be bit-identical.

Every estimator the framework trains (GBDT classifier/regressor, the
NumPy NN classifiers and regressors) round-trips through the JSON model
state and reproduces its in-memory predictions exactly --
``np.array_equal``, not ``allclose`` -- because a served model must be
indistinguishable from the one that was validated at training time.
"""

import json

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml import (
    ConvMLPRegressor,
    ConvNetClassifier,
    FcNetClassifier,
    GBDTClassifier,
    GBRegressor,
    MLPRegressor,
    model_from_state,
    model_state,
)
from repro.ml.serialize import decode_array, encode_array
from repro.stencil.generator import generate_population
from repro.stencil.tensorize import assign_tensor

RNG = np.random.default_rng(7)
X = RNG.normal(size=(48, 12))
Y_CLS = RNG.integers(0, 4, size=48)
Y_REG = np.abs(RNG.normal(size=48)) + 0.1
STENCILS = generate_population(2, 16, seed=7)
TENSORS = np.stack([assign_tensor(s, 4) for s in STENCILS])
T_CLS = RNG.integers(0, 3, size=len(STENCILS))
AUX = RNG.normal(size=(len(STENCILS), 6))
T_REG = np.abs(RNG.normal(size=len(STENCILS))) + 0.1


def round_trip(model):
    """Full wire round trip: state -> JSON text -> state -> model."""
    doc = json.loads(json.dumps(model_state(model)))
    return model_from_state(doc)


class TestArrayCodec:
    @pytest.mark.parametrize(
        "arr",
        [
            np.arange(12, dtype=np.float64).reshape(3, 4) / 7.0,
            np.array([1, -2, 3], dtype=np.int64),
            RNG.normal(size=(2, 3, 4)),
            np.array([], dtype=np.float64),
        ],
    )
    def test_round_trip_exact(self, arr):
        out = decode_array(json.loads(json.dumps(encode_array(np.asarray(arr)))))
        arr = np.asarray(arr)
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_extreme_floats_survive(self):
        arr = np.array([1e-308, 1e308, np.pi, -0.0, np.nextafter(1.0, 2.0)])
        out = decode_array(json.loads(json.dumps(encode_array(arr)))
                           )
        assert arr.tobytes() == out.tobytes()


class TestEstimatorRoundTrips:
    def test_gbdt_classifier(self):
        model = GBDTClassifier(n_rounds=8, max_depth=3, seed=3)
        model.fit(X, Y_CLS)
        clone = round_trip(model)
        assert np.array_equal(
            model.decision_function(X), clone.decision_function(X)
        )
        assert np.array_equal(model.predict_proba(X), clone.predict_proba(X))
        assert np.array_equal(model.predict(X), clone.predict(X))

    def test_gb_regressor(self):
        model = GBRegressor(n_rounds=8, max_depth=3, seed=3)
        model.fit(X, Y_REG)
        clone = round_trip(model)
        assert np.array_equal(model.predict(X), clone.predict(X))

    def test_mlp_regressor(self):
        model = MLPRegressor(n_layers=2, layer_size=16, epochs=2, seed=3)
        model.fit(X, Y_REG)
        clone = round_trip(model)
        assert np.array_equal(model.predict(X), clone.predict(X))

    def test_convnet_classifier(self):
        model = ConvNetClassifier(
            n_classes=3, channels=(2, 3), dense=8, epochs=2, seed=3
        )
        model.fit(TENSORS, T_CLS)
        clone = round_trip(model)
        assert np.array_equal(
            model.predict_proba(TENSORS), clone.predict_proba(TENSORS)
        )
        assert np.array_equal(model.predict(TENSORS), clone.predict(TENSORS))

    def test_fcnet_classifier(self):
        model = FcNetClassifier(n_classes=3, hidden=(16, 8), epochs=2, seed=3)
        model.fit(TENSORS, T_CLS)
        clone = round_trip(model)
        assert np.array_equal(
            model.predict_proba(TENSORS), clone.predict_proba(TENSORS)
        )

    def test_convmlp_regressor(self):
        model = ConvMLPRegressor(
            channels=(2, 3), mlp_hidden=(8,), head_hidden=8, epochs=2, seed=3
        )
        model.fit(TENSORS, AUX, T_REG)
        clone = round_trip(model)
        assert np.array_equal(
            model.predict(TENSORS, AUX), clone.predict(TENSORS, AUX)
        )

    def test_workers_not_serialized(self):
        """Parallelism knobs are runtime config, not model state: a
        model trained with a pool round-trips to a sequential clone
        with identical predictions."""
        model = GBDTClassifier(n_rounds=4, seed=3, workers=2)
        model.fit(X, Y_CLS)
        clone = round_trip(model)
        assert np.array_equal(model.predict(X), clone.predict(X))
        assert "workers" not in model_state(model)["state"]["hyper"]


class TestStateValidation:
    def test_unknown_class_rejected(self):
        with pytest.raises(ModelError, match="unknown model class"):
            model_from_state({"class": "RandomForest", "state": {}})

    def test_malformed_doc_rejected(self):
        with pytest.raises(ModelError):
            model_from_state({"state": {}})
