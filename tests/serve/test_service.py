"""The prediction service: model answers, degradation, telemetry.

The service's contract has three legs: (1) when an artifact is
installed, its answers are exactly what the underlying model would say
(batched or not); (2) when the artifact is missing or unreadable, the
heuristic fallback answers instead of the service failing; (3) every
request leaves a trace in the telemetry counters.
"""

import threading

import numpy as np
import pytest

from repro.errors import ArtifactError, ServiceError
from repro.serve import (
    FeatureCache,
    HeuristicSelector,
    ModelRegistry,
    PredictionService,
)
from repro.serve.batching import MicroBatcher
from repro.serve.fallback import LADDER
from repro.serve.service import PredictRequest, SelectRequest, setting_from_dict
from repro.serve.telemetry import LatencyHistogram
from repro.stencil.generator import generate_population
from repro.stencil.library import get


@pytest.fixture()
def service(selector_artifact, predictor_artifact):
    svc = PredictionService()
    svc.install(selector_artifact, "sel@test")
    svc.install(predictor_artifact, "pred@test")
    return svc


STENCILS_2D = generate_population(2, 12, seed=33)


class TestModelPath:
    def test_select_matches_model(self, service, selector_artifact):
        cache = FeatureCache(selector_artifact.max_order)
        for s in STENCILS_2D:
            r = service.select_one(s, "V100")
            assert r.source == "model"
            assert r.artifact == "sel@test"
            x = cache.features([s])
            cls = int(selector_artifact.model.predict(x)[0])
            assert r.cls == cls
            assert r.oc == selector_artifact.representatives[cls]

    def test_batched_equals_sequential(self, service):
        reqs = [SelectRequest(s, "V100") for s in STENCILS_2D]
        batched = service.select_many(reqs)
        single = [service.select_one(s, "V100") for s in STENCILS_2D]
        assert [r.oc for r in batched] == [r.oc for r in single]
        assert [r.cls for r in batched] == [r.cls for r in single]

    def test_predict_batched_equals_sequential(self, service):
        from repro.optimizations import OC_BY_NAME, sample_setting

        rng = np.random.default_rng(1)
        reqs = [
            PredictRequest(
                s,
                oc.name,
                sample_setting(oc, s.ndim, rng),
                gpu,
            )
            for s, oc, gpu in zip(
                STENCILS_2D,
                [OC_BY_NAME["naive"], OC_BY_NAME["ST"], OC_BY_NAME["ST_RT"]] * 4,
                ["V100", "A100", "P100"] * 4,
            )
        ]
        batched = service.predict_many(reqs)
        single = [
            service.predict_one(r.stencil, r.oc, r.setting, r.gpu)
            for r in reqs
        ]
        assert batched == single
        assert all(t > 0 for t in batched)

    def test_micro_batcher_coalesces(self, selector_artifact, predictor_artifact):
        svc = PredictionService(max_wait_s=0.05)
        svc.install(selector_artifact)
        svc.install(predictor_artifact)
        results = {}
        barrier = threading.Barrier(8)

        def worker(i, s):
            barrier.wait()
            results[i] = svc.select(s, "V100")

        threads = [
            threading.Thread(target=worker, args=(i, s), daemon=True)
            for i, s in enumerate(STENCILS_2D[:8])
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = [svc.select_one(s, "V100") for s in STENCILS_2D[:8]]
        for i, exp in enumerate(expected):
            assert results[i].oc == exp.oc and results[i].cls == exp.cls
        snap = svc.stats.snapshot()
        assert snap["batches"]["requests"] >= 8
        assert snap["batches"]["mean_size"] > 1.0


class TestDegradation:
    def test_no_selector_falls_back(self, service):
        s3 = get("star3d1r")
        r = service.select_one(s3, "V100")
        assert r.source == "fallback"
        assert r.artifact is None
        assert r.rung in ("analytical", "heuristic-ladder")
        snap = service.stats.snapshot()
        assert snap["fallbacks"] == 1
        assert snap["fallback_rungs"].get(r.rung) == 1

    def test_empty_service_always_falls_back(self):
        svc = PredictionService()
        r = svc.select_one(get("star2d1r"), "V100")
        assert r.source == "fallback"
        assert r.oc in svc.analytical.candidates or r.oc in LADDER

    def test_analytical_rung_answers_first(self):
        svc = PredictionService()
        for s in STENCILS_2D[:4]:
            r = svc.select_one(s, "V100")
            assert r.rung == "analytical"
            assert r.oc == svc.analytical.select(s, "V100")

    def test_heuristic_is_last_resort(self):
        class _Broken:
            name = "analytical"

            def select(self, stencil, gpu):
                raise RuntimeError("no estimate")

        svc = PredictionService(analytical=_Broken())
        h = HeuristicSelector()
        for s in STENCILS_2D[:4]:
            r = svc.select_one(s, "V100")
            assert r.rung == "heuristic-ladder"
            assert r.oc == h.select(s, "V100")
        assert svc.stats.snapshot()["fallback_rungs"] == {"heuristic-ladder": 4}

    def test_corrupt_registry_artifact_degrades(
        self, selector_artifact, tmp_path
    ):
        reg = ModelRegistry(tmp_path / "reg")
        version = reg.publish(selector_artifact, "sel")
        p = reg.path("sel", version)
        p.write_text(p.read_text()[:-40])  # truncate: invalid JSON
        svc = PredictionService(registry=reg)
        assert svc.degraded and svc.degraded[0]["artifact"] == "sel"
        r = svc.select_one(get("star2d1r"), "V100")
        assert r.source == "fallback"
        assert svc.capabilities()["degraded"] == svc.degraded

    def test_healthy_registry_loads(
        self, selector_artifact, predictor_artifact, tmp_path
    ):
        reg = ModelRegistry(tmp_path / "reg")
        reg.publish(selector_artifact, "sel")
        reg.publish(predictor_artifact, "pred")
        svc = PredictionService(registry=reg)
        assert not svc.degraded
        assert svc.select_one(get("star2d1r"), "V100").source == "model"
        assert svc.capabilities()["selectors"] == {"2d/V100": "sel@v000001"}

    def test_predict_without_artifact_is_an_error(self):
        svc = PredictionService()
        with pytest.raises(ServiceError, match="no 2d predictor"):
            svc.predict_one(get("star2d1r"), "ST", setting_from_dict(None), "V100")


class TestValidation:
    def test_unknown_gpu(self, service):
        with pytest.raises(ServiceError, match="unknown GPU"):
            service.select_one(get("star2d1r"), "H100")
        assert service.stats.snapshot()["errors"]["select"] == 1

    def test_unknown_oc(self, service):
        with pytest.raises(ServiceError, match="unknown OC"):
            service.predict_one(
                get("star2d1r"), "WARP", setting_from_dict(None), "V100"
            )

    def test_bad_setting_params(self):
        with pytest.raises(ServiceError, match="unknown setting parameter"):
            setting_from_dict({"block_q": 4})
        with pytest.raises(ServiceError, match="bad setting values"):
            setting_from_dict({"block_x": "wide"})

    def test_selector_artifact_without_gpu_rejected(self, predictor_artifact):
        import dataclasses

        hacked = dataclasses.replace(
            predictor_artifact, kind="selector",
            representatives=["naive"], gpu=None,
        )
        with pytest.raises(ArtifactError, match="name a GPU"):
            PredictionService().install(hacked)


class TestTelemetry:
    def test_counters_line_up(self, service):
        s = get("star2d1r")
        for _ in range(3):
            service.select_one(s, "V100")
        service.select_one(get("star3d1r"), "V100")  # fallback
        snap = service.stats.snapshot(cache_info=service.cache.info())
        assert snap["requests"]["select"] == 4
        assert snap["model_hits"] == 3
        assert snap["fallbacks"] == 1
        assert snap["latency"]["select"]["count"] == 4
        lat = snap["latency"]["select"]
        assert 0 < lat["p50_ms"] <= lat["p95_ms"] <= lat["p99_ms"]

    def test_cache_hits(self, service):
        s = get("star2d1r")
        service.select_one(s, "V100")  # miss: first sight of this stencil
        before = service.cache.info()["hits"]
        service.select_one(s, "V100")
        service.predict_one(s, "ST", setting_from_dict(None), "A100")
        info = service.cache.info()
        assert info["hits"] >= before + 2
        assert info["size"] >= 1

    def test_histogram_percentiles(self):
        h = LatencyHistogram()
        for ms in [1, 1, 1, 1, 1, 1, 1, 1, 1, 100]:
            h.record(ms / 1000.0)
        s = h.summary()
        assert s["count"] == 10
        assert s["p50_ms"] < 5
        assert s["p99_ms"] > 50
        assert s["max_ms"] >= 100

    def test_empty_histogram(self):
        s = LatencyHistogram().summary()
        assert s["count"] == 0


class TestMicroBatcher:
    def test_single_caller_passes_through(self):
        calls = []

        def batch_fn(items):
            calls.append(list(items))
            return [i * 2 for i in items]

        mb = MicroBatcher(batch_fn, max_batch=4, max_wait_s=0.001)
        assert mb.submit(21) == 42
        assert calls == [[21]]

    def test_errors_reach_every_caller(self):
        def batch_fn(items):
            raise ValueError("boom")

        mb = MicroBatcher(batch_fn, max_batch=4, max_wait_s=0.01)
        errors = []
        barrier = threading.Barrier(3)

        def worker():
            barrier.wait()
            try:
                mb.submit(1)
            except ValueError as e:
                errors.append(str(e))

        threads = [
            threading.Thread(target=worker, daemon=True) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == ["boom"] * 3
