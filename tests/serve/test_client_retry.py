"""Client-side retry: transient vs fatal, backoff, Retry-After, jitter.

All tests inject a fake opener and sleep -- no sockets, no real waits.
The taxonomy mirrors the PR 1 measurement guard: connection errors and
503 sheds are transient (bounded retries with exponential backoff);
4xx/500 are deterministic and surface immediately.
"""

import io
import json
import urllib.error

import pytest

from repro.errors import ServiceError
from repro.serve.client import (
    ClientRetryPolicy,
    ServeClient,
    _jitter_scale,
)


class _Response:
    def __init__(self, payload: dict):
        self._body = json.dumps(payload).encode()

    def read(self) -> bytes:
        return self._body

    def __enter__(self):
        return self

    def __exit__(self, *a):
        return False


def _http_error(code: int, headers: "dict | None" = None):
    import email.message

    msg = email.message.Message()
    for k, v in (headers or {}).items():
        msg[k] = v
    return urllib.error.HTTPError(
        "http://x", code, "nope", msg, io.BytesIO(b'{"error": "boom"}')
    )


class _Opener:
    """Scripted responses: exceptions raise, dicts return."""

    def __init__(self, script: list):
        self.script = list(script)
        self.calls = 0

    def __call__(self, req, timeout=None):
        self.calls += 1
        step = self.script.pop(0)
        if isinstance(step, BaseException):
            raise step
        return _Response(step)


def make_client(script, **policy_kw):
    sleeps = []
    policy = ClientRetryPolicy(**policy_kw) if policy_kw else None
    opener = _Opener(script)
    client = ServeClient(
        "http://test", retry=policy, sleep=sleeps.append, opener=opener
    )
    return client, opener, sleeps


class TestRetry:
    def test_connection_error_retried_then_succeeds(self):
        client, opener, sleeps = make_client(
            [
                urllib.error.URLError("refused"),
                urllib.error.URLError("refused"),
                {"ok": True},
            ]
        )
        assert client.healthz() == {"ok": True}
        assert opener.calls == 3
        assert client.retries_used == 2
        assert len(sleeps) == 2
        assert sleeps[1] > sleeps[0]  # exponential backoff

    def test_503_retried(self):
        client, opener, _ = make_client([_http_error(503), {"ok": True}])
        assert client.healthz() == {"ok": True}
        assert opener.calls == 2

    def test_retry_after_header_honored(self):
        client, _, sleeps = make_client(
            [_http_error(503, {"Retry-After": "0.777"}), {"ok": True}]
        )
        client.healthz()
        assert sleeps == [pytest.approx(0.777)]

    def test_retry_after_capped_at_backoff_max(self):
        client, _, sleeps = make_client(
            [_http_error(503, {"Retry-After": "3600"}), {"ok": True}],
            backoff_max_s=1.5,
        )
        client.healthz()
        assert sleeps == [pytest.approx(1.5)]

    def test_400_is_fatal_no_retry(self):
        client, opener, sleeps = make_client([_http_error(400)])
        with pytest.raises(ServiceError, match="HTTP 400: boom"):
            client.healthz()
        assert opener.calls == 1 and sleeps == []

    def test_500_is_fatal_no_retry(self):
        client, opener, _ = make_client([_http_error(500)])
        with pytest.raises(ServiceError, match="HTTP 500"):
            client.healthz()
        assert opener.calls == 1

    def test_exhaustion_raises_service_error(self):
        client, opener, _ = make_client(
            [urllib.error.URLError("down")] * 4, max_retries=3
        )
        with pytest.raises(ServiceError, match="gave up after 4 attempts"):
            client.healthz()
        assert opener.calls == 4

    def test_retries_disabled(self):
        client, opener, _ = make_client(
            [urllib.error.URLError("down")], max_retries=0
        )
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()
        assert opener.calls == 1

    def test_backoff_schedule_is_deterministic(self):
        script = [urllib.error.URLError("x")] * 3 + [{"ok": True}]
        client_a, _, sleeps_a = make_client(list(script))
        client_b, _, sleeps_b = make_client(list(script))
        client_a.healthz()
        client_b.healthz()
        # Same path, same attempts -> bit-identical delays (no RNG).
        assert sleeps_a == sleeps_b and len(sleeps_a) == 3


class TestJitter:
    def test_deterministic(self):
        assert _jitter_scale("/v1/select", 0, 0.25) == _jitter_scale(
            "/v1/select", 0, 0.25
        )

    def test_bounded(self):
        for attempt in range(8):
            s = _jitter_scale("/v1/predict", attempt, 0.25)
            assert 0.75 <= s <= 1.25

    def test_decorrelates_paths(self):
        scales = {
            _jitter_scale(path, 1, 0.25)
            for path in ("/a", "/b", "/c", "/d", "/e")
        }
        assert len(scales) > 1

    def test_zero_jitter(self):
        assert _jitter_scale("/a", 3, 0.0) == 1.0
