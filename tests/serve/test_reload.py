"""Hot reload: breaker transitions, validated swaps, pins, rollbacks.

The breaker is unit-tested on a fake clock; the reloader tests run
against a real directory registry with real trained artifacts, because
the load/validate/swap path is exactly what must survive corrupt
publishes and torn tags.
"""

import dataclasses

import pytest

from repro.errors import ArtifactError
from repro.serve import ModelRegistry, PredictionService
from repro.serve.reload import (
    CircuitBreaker,
    ModelReloader,
    ReloadPolicy,
)
from repro.stencil.library import get


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestCircuitBreaker:
    def make(self, **kw):
        clock = FakeClock()
        policy = ReloadPolicy(failure_threshold=3, cooldown_s=10.0, **kw)
        return CircuitBreaker(policy, clock), clock

    def test_closed_allows(self):
        breaker, _ = self.make()
        assert breaker.state == "closed" and breaker.allow()

    def test_opens_at_threshold(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.snapshot()["opens"] == 1

    def test_half_open_after_cooldown(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.t = 9.9
        assert not breaker.allow()
        clock.t = 10.0
        assert breaker.allow()
        assert breaker.state == "half_open"

    def test_half_open_failure_reopens_immediately(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.t = 10.0
        assert breaker.allow()
        breaker.record_failure()  # the probe failed
        assert breaker.state == "open"
        assert breaker.snapshot()["opens"] == 2
        clock.t = 19.0
        assert not breaker.allow()  # cooldown restarts from the reopen

    def test_success_closes_and_resets(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        clock.t = 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0


@pytest.fixture()
def rig(tmp_path, selector_artifact, predictor_artifact):
    """A service + registry + reloader over real artifacts."""
    registry = ModelRegistry(tmp_path / "models")
    registry.publish(selector_artifact, "sel")
    registry.publish(predictor_artifact, "pred")
    service = PredictionService()
    clock = FakeClock()
    reloader = ModelReloader(
        service,
        registry,
        policy=ReloadPolicy(
            failure_threshold=2, cooldown_s=10.0, min_window=5,
            max_degraded_rate=0.5,
        ),
        clock=clock,
    )
    events = reloader.prime()
    assert {(e["name"], e["action"]) for e in events} == {
        ("sel", "swapped"), ("pred", "swapped")
    }
    return service, registry, reloader, clock


def _publish_corrupt(registry: ModelRegistry, name: str) -> str:
    """A next version whose document fails checksum validation."""
    from repro.profiling.storage import atomic_write_text

    d = registry.root / name
    versions = registry.versions(name)
    version = f"v{int(versions[-1][1:]) + 1:06d}"
    atomic_write_text(d / f"{version}.json", '{"format": 1}')
    atomic_write_text(d / "LATEST", version + "\n")
    return version


class TestModelReloader:
    def test_prime_installs_and_serves(self, rig):
        service, _, reloader, _ = rig
        r = service.select_one(get("star2d2r"), "V100")
        assert r.source == "model" and r.artifact == "sel@v000001"
        snap = reloader.snapshot()
        assert snap["sel"]["installed"] == "v000001"
        assert snap["sel"]["breaker"]["state"] == "closed"

    def test_noop_poll_returns_no_events(self, rig):
        _, _, reloader, _ = rig
        assert reloader.check_once() == []

    def test_good_publish_swaps(self, rig, selector_artifact):
        service, registry, reloader, _ = rig
        registry.publish(selector_artifact, "sel")
        events = reloader.check_once()
        assert events == [
            {"name": "sel", "action": "swapped", "version": "v000002"}
        ]
        r = service.select_one(get("star2d2r"), "V100")
        assert r.artifact == "sel@v000002"
        assert reloader.snapshot()["sel"]["last_good"] == "v000001"

    def test_corrupt_publish_pins_last_good(self, rig):
        service, registry, reloader, _ = rig
        _publish_corrupt(registry, "sel")
        events = reloader.check_once()
        assert events[0]["action"] == "load-failed"
        assert "checksum" in events[0]["error"]
        # Pinned: traffic still answers from the old model.
        r = service.select_one(get("star2d2r"), "V100")
        assert r.source == "model" and r.artifact == "sel@v000001"

    def test_repeated_bad_loads_open_breaker(self, rig):
        _, registry, reloader, _ = rig
        _publish_corrupt(registry, "sel")
        reloader.check_once()  # failure 1 (threshold 2)
        events = reloader.check_once()  # failure 2: opens
        assert events[0]["breaker"] == "open"
        _publish_corrupt(registry, "sel")
        events = reloader.check_once()
        assert events[0]["action"] == "breaker-open"  # no load attempted
        assert reloader.snapshot()["sel"]["load_failures"] == 2

    def test_breaker_recovers_via_half_open_probe(
        self, rig, selector_artifact
    ):
        service, registry, reloader, clock = rig
        _publish_corrupt(registry, "sel")
        reloader.check_once()
        reloader.check_once()  # breaker open
        registry.publish(selector_artifact, "sel")  # v000003, good
        assert reloader.check_once()[0]["action"] == "breaker-open"
        clock.t = 10.0  # cooldown elapsed -> half-open probe
        events = reloader.check_once()
        assert events == [
            {"name": "sel", "action": "swapped", "version": "v000003"}
        ]
        assert reloader.snapshot()["sel"]["breaker"]["state"] == "closed"
        r = service.select_one(get("star2d2r"), "V100")
        assert r.artifact == "sel@v000003"

    def test_torn_tag_fails_closed(self, rig):
        from repro.profiling.storage import atomic_write_text

        service, registry, reloader, _ = rig
        atomic_write_text(registry.root / "sel" / "LATEST", "")
        events = reloader.check_once()
        assert events[0]["action"] == "poll-failed"
        assert "torn tag" in events[0]["error"]
        r = service.select_one(get("star2d2r"), "V100")
        assert r.source == "model"  # still pinned

    def test_degraded_swap_rolls_back(self, rig, selector_artifact):
        service, registry, reloader, _ = rig
        registry.publish(selector_artifact, "sel")
        reloader.check_once()  # swap to v000002

        class Poison:
            def predict(self, X):
                raise RuntimeError("poisoned")

        service._selectors[(2, "V100")].artifact.model = Poison()
        stencil = get("star2d2r")
        for _ in range(6):  # min_window=5, all degraded
            assert service.select_one(stencil, "V100").source == "fallback"
        events = reloader.check_once()
        assert events[0]["action"] == "rollback"
        assert events[0]["from"] == "v000002"
        assert events[0]["to"] == "v000001"
        snap = reloader.snapshot()["sel"]
        assert snap["installed"] == "v000001"
        assert snap["rollbacks"] == 1
        assert snap["rejected"] == ["v000002"]
        # Back on the last good model, and the bad version stays out.
        assert service.select_one(stencil, "V100").source == "model"
        assert reloader.check_once() == []  # v000002 is rejected, no retry

    def test_healthy_swap_survives_window(self, rig, selector_artifact):
        service, registry, reloader, _ = rig
        registry.publish(selector_artifact, "sel")
        reloader.check_once()
        stencil = get("star2d2r")
        for _ in range(6):
            service.select_one(stencil, "V100")
        assert reloader.check_once() == []
        assert reloader.snapshot()["sel"]["last_good"] == "v000002"

    def test_validation_rejects_broken_selector(self, rig, selector_artifact):
        _, _, reloader, _ = rig

        class Poison:
            def predict(self, X):
                raise RuntimeError("poisoned")

        bad = dataclasses.replace(selector_artifact, model=Poison())
        with pytest.raises(ArtifactError, match="smoke validation"):
            reloader._validate(bad)

    def test_validation_accepts_good_artifacts(
        self, rig, selector_artifact, predictor_artifact
    ):
        _, _, reloader, _ = rig
        reloader._validate(selector_artifact)
        reloader._validate(predictor_artifact)

    def test_stats_snapshot_carries_reload(self, rig):
        service, _, reloader, _ = rig
        snap = service.stats_snapshot()
        assert snap["reload"]["sel"]["installed"] == "v000001"

    def test_background_thread_start_stop(self, rig, selector_artifact):
        import time as real_time

        service, registry, reloader, _ = rig
        reloader.start(interval_s=0.01)
        try:
            registry.publish(selector_artifact, "sel")
            deadline = real_time.monotonic() + 5.0
            while real_time.monotonic() < deadline:
                if reloader.snapshot()["sel"]["installed"] == "v000002":
                    break
                real_time.sleep(0.01)
            assert reloader.snapshot()["sel"]["installed"] == "v000002"
        finally:
            reloader.stop()
        assert reloader._thread is None
