"""Admission control: bounded queue, deadlines, shedding, health.

Unit tests drive the controller and the micro-batcher on a fake clock
(no real waits decide correctness); the service-level tests check that
overload surfaces as :class:`OverloadError` -- counted as shed, never
as an error -- and that ``/healthz`` degrades before requests fail.
"""

import threading
import time

import pytest

from repro.errors import OverloadError
from repro.serve import PredictionService
from repro.serve.admission import (
    _UNSET,
    AdmissionController,
    AdmissionPolicy,
)
from repro.serve.batching import MicroBatcher
from repro.serve.telemetry import ServiceStats
from repro.stencil.library import get


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestController:
    def test_admit_until_bound_then_shed(self):
        adm = AdmissionController(AdmissionPolicy(max_queue=2))
        adm.admit()
        adm.admit()
        with pytest.raises(OverloadError) as exc:
            adm.admit()
        assert exc.value.kind == "queue_full"
        assert exc.value.retry_after_s > 0
        assert adm.depth == 2 and adm.shed_total == 1

    def test_release_frees_slots(self):
        adm = AdmissionController(AdmissionPolicy(max_queue=1))
        adm.admit()
        adm.release()
        adm.admit()  # does not raise
        assert adm.depth == 1

    def test_unbounded_when_disabled(self):
        adm = AdmissionController(AdmissionPolicy(max_queue=0))
        for _ in range(1000):
            adm.admit()
        assert adm.status() == "ok"

    def test_peak_depth_tracked(self):
        adm = AdmissionController(AdmissionPolicy(max_queue=10))
        for _ in range(4):
            adm.admit()
        adm.release(4)
        assert adm.snapshot()["queue_depth_peak"] == 4
        assert adm.snapshot()["queue_depth"] == 0

    def test_shed_counted_in_stats(self):
        stats = ServiceStats()
        adm = AdmissionController(AdmissionPolicy(max_queue=1), stats=stats)
        adm.admit()
        with pytest.raises(OverloadError):
            adm.admit()
        assert stats.snapshot()["shed"] == 1

    def test_deadline_from_policy_default(self):
        clock = FakeClock(100.0)
        adm = AdmissionController(
            AdmissionPolicy(default_budget_s=0.5), clock=clock
        )
        assert adm.deadline_for() == pytest.approx(100.5)
        assert adm.deadline_for(_UNSET) == pytest.approx(100.5)
        assert adm.deadline_for(None) is None
        assert adm.deadline_for(2.0) == pytest.approx(102.0)

    def test_expired(self):
        clock = FakeClock(10.0)
        adm = AdmissionController(AdmissionPolicy(), clock=clock)
        deadline = adm.deadline_for(1.0)
        assert not adm.expired(deadline)
        clock.t = 11.5
        assert adm.expired(deadline)
        assert not adm.expired(None)

    def test_deadline_error_kind(self):
        adm = AdmissionController(AdmissionPolicy())
        assert adm.deadline_error().kind == "deadline"

    def test_status_degrades_before_bound(self):
        adm = AdmissionController(
            AdmissionPolicy(max_queue=10, overload_threshold=0.5)
        )
        for _ in range(4):
            adm.admit()
        assert adm.status() == "ok"
        adm.admit()  # depth 5 = threshold
        assert adm.status() == "overloaded"
        assert adm.snapshot()["status"] == "overloaded"


class TestBatcherAdmission:
    def test_queue_full_sheds_before_queueing(self):
        adm = AdmissionController(AdmissionPolicy(max_queue=1))
        release = threading.Event()

        def slow(values):
            release.wait(5.0)
            return list(values)

        batcher = MicroBatcher(slow, max_wait_s=0.0, admission=adm)
        t = threading.Thread(target=batcher.submit, args=(1,), daemon=True)
        t.start()
        deadline = time.monotonic() + 5.0
        while adm.depth == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        with pytest.raises(OverloadError):
            batcher.submit(2)
        release.set()
        t.join(timeout=5.0)
        assert adm.depth == 0  # slot released after the batch

    def test_expired_item_shed_before_compute(self):
        clock = FakeClock(0.0)
        adm = AdmissionController(AdmissionPolicy(max_queue=8), clock=clock)
        seen = []

        def fn(values):
            seen.extend(values)
            return list(values)

        batcher = MicroBatcher(fn, max_wait_s=0.0, admission=adm)
        # An already-expired deadline: the leader sheds it at dequeue.
        clock.t = 10.0
        with pytest.raises(OverloadError) as exc:
            batcher.submit("late", deadline=5.0)
        assert exc.value.kind == "deadline"
        assert seen == []  # compute never saw the expired item
        assert adm.depth == 0

    def test_live_deadline_passes_through(self):
        clock = FakeClock(0.0)
        adm = AdmissionController(AdmissionPolicy(max_queue=8), clock=clock)
        batcher = MicroBatcher(
            lambda vs: [v * 2 for v in vs], max_wait_s=0.0, admission=adm
        )
        assert batcher.submit(21, deadline=99.0) == 42


class TestServiceOverload:
    @pytest.fixture()
    def tight_service(self, selector_artifact):
        service = PredictionService(
            admission=AdmissionPolicy(max_queue=1, retry_after_s=0.01),
            max_wait_s=0.0,
        )
        service.install(selector_artifact, "sel@tight")
        return service

    def test_select_sheds_under_load(self, tight_service):
        service = tight_service
        stall = threading.Event()
        inner = service._select_batcher.batch_fn

        def stalled(values):
            stall.wait(5.0)
            return inner(values)

        service._select_batcher.batch_fn = stalled
        stencil = get("star2d1r")
        errors = []

        def first():
            try:
                service.select(stencil, "V100")
            except OverloadError as e:  # pragma: no cover - defensive
                errors.append(e)

        t = threading.Thread(target=first, daemon=True)
        t.start()
        deadline = time.monotonic() + 5.0
        while service.admission.depth == 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        with pytest.raises(OverloadError):
            service.select(stencil, "V100")
        stall.set()
        t.join(timeout=5.0)
        assert not errors
        snap = service.stats_snapshot()
        # Sheds are not errors: the failed admit never reached compute.
        assert snap["shed"] == 1
        assert snap["errors_total"] == 0
        assert snap["admission"]["shed_total"] == 1

    def test_expired_budget_counts_deadline_miss(self, selector_artifact):
        clock = FakeClock(0.0)
        service = PredictionService(
            admission=AdmissionPolicy(max_queue=8),
            clock=clock,
            max_wait_s=0.0,
        )
        service.install(selector_artifact, "sel@dl")
        # On a single thread a submit leads immediately, so drive the
        # expiry through the batcher with an already-stale deadline
        # (what a queued follower's deadline looks like after a stall).
        clock.t = 50.0
        with pytest.raises(OverloadError):
            service._select_batcher.submit(
                None, deadline=clock.t - 1.0
            )
        assert service.stats.snapshot()["deadline_misses"] == 1

    def test_healthz_degrades_then_recovers(self, tight_service):
        service = tight_service
        assert service.health() == {
            "ok": True, "status": "ok", "queue_depth": 0
        }
        service.admission.admit()  # fills the queue (bound 1)
        health = service.health()
        assert health["ok"] is True
        assert health["status"] == "overloaded"
        assert health["queue_depth"] == 1
        service.admission.release()
        assert service.health()["status"] == "ok"

    def test_stats_snapshot_has_admission(self, tight_service):
        snap = tight_service.stats_snapshot()
        assert snap["admission"]["max_queue"] == 1
        assert snap["admission"]["status"] == "ok"
