"""Analytical and hybrid artifacts through the serving stack.

The analytical selector trains nothing -- the artifact is just the
configured ranker -- but it must behave exactly like a learned selector
once installed: source == "model", class indices decode through
``representatives``, registry round trips preserve answers.  Hybrid
predictor artifacts must augment request features with the analytical
columns at serve time.
"""

import pytest

from repro.ml.analytical import AnalyticalSelector
from repro.optimizations import OC_BY_NAME
from repro.profiling import run_campaign
from repro.profiling.train import train_predictor_artifact, train_selector_artifact
from repro.serve import ModelRegistry, PredictionService
from repro.serve.service import PredictRequest, setting_from_dict
from repro.stencil.library import get

TINY_OCS = ("naive", "ST", "ST_RT", "CM")


@pytest.fixture(scope="module")
def tiny_campaign():
    return run_campaign(
        [get("star2d1r"), get("box2d1r")],
        gpus=("V100", "A100"),
        ocs=[OC_BY_NAME[n] for n in TINY_OCS],
        n_settings=1,
        seed=7,
    )


@pytest.fixture(scope="module")
def analytical_selector_artifact(tiny_campaign):
    return train_selector_artifact(tiny_campaign, "V100", method="analytical")


class TestAnalyticalSelectorArtifact:
    def test_artifact_shape(self, analytical_selector_artifact):
        art = analytical_selector_artifact
        assert art.kind == "selector"
        assert art.method == "analytical"
        assert isinstance(art.model, AnalyticalSelector)
        # Candidates mirror the campaign's OC grid, in order.
        assert tuple(art.representatives) == TINY_OCS
        assert art.meta["train_rows"] == 0

    def test_serves_as_model_rung(self, analytical_selector_artifact):
        svc = PredictionService()
        svc.install(analytical_selector_artifact, "ana@test")
        s = get("star2d1r")
        r = svc.select_one(s, "V100")
        assert r.source == "model"
        assert r.artifact == "ana@test"
        assert r.oc in TINY_OCS
        assert r.cls == analytical_selector_artifact.representatives.index(r.oc)
        assert r.oc == analytical_selector_artifact.model.select(s, "V100")
        assert svc.stats.snapshot()["fallbacks"] == 0

    def test_registry_round_trip(self, analytical_selector_artifact, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.publish(analytical_selector_artifact, "ana-sel")
        svc = PredictionService(registry=reg)
        s = get("box2d1r")
        assert (
            svc.select_one(s, "V100").oc
            == analytical_selector_artifact.model.select(s, "V100")
        )


class TestPredictorArtifacts:
    @pytest.mark.parametrize("method", ["hybrid", "analytical"])
    def test_predicts_positive_times(self, tiny_campaign, method):
        hyper = {"n_rounds": 30} if method == "hybrid" else {}
        art = train_predictor_artifact(tiny_campaign, method=method, **hyper)
        assert art.kind == "predictor"
        assert art.method == method
        svc = PredictionService()
        svc.install(art)
        t = svc.predict_one(
            get("star2d1r"), "ST", setting_from_dict(None), "V100"
        )
        assert t > 0

    def test_hybrid_batched_equals_sequential(self, tiny_campaign):
        art = train_predictor_artifact(tiny_campaign, method="hybrid", n_rounds=30)
        svc = PredictionService()
        svc.install(art)
        reqs = [
            PredictRequest(get(n), oc, setting_from_dict(None), gpu)
            for n, oc, gpu in [
                ("star2d1r", "naive", "V100"),
                ("star2d1r", "ST", "A100"),
                ("box2d1r", "ST_RT", "V100"),
            ]
        ]
        batched = svc.predict_many(reqs)
        single = [
            svc.predict_one(r.stencil, r.oc, r.setting, r.gpu) for r in reqs
        ]
        assert batched == single
        assert all(t > 0 for t in batched)
