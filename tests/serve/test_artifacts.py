"""Artifact integrity and the directory-backed model registry.

The failure modes that matter in a registry are the quiet ones: a
half-written file, a flipped bit in a weight matrix, a document written
by a newer library.  Every one must fail closed with a clear
:class:`ArtifactError` -- and a valid artifact must round-trip to a
model that predicts bit-identically.
"""

import json

import numpy as np
import pytest

from repro.errors import ArtifactError
from repro.serve import (
    SERVE_FORMAT_VERSION,
    ModelArtifact,
    ModelRegistry,
    load_artifact,
    save_artifact,
)
from repro.serve.artifacts import checksum_payload
from repro.serve.registry import default_artifact_name
from repro.stencil.features import extract_features
from repro.stencil.library import get


def _features(names):
    return np.stack([extract_features(get(n), 4) for n in names])


X2D = _features(["star2d1r", "star2d2r", "box2d1r"])


class TestArtifactRoundTrip:
    def test_save_load_bit_identical(self, selector_artifact, tmp_path):
        path = tmp_path / "sel.json"
        save_artifact(selector_artifact, path)
        loaded = load_artifact(path)
        assert loaded.kind == "selector"
        assert loaded.method == selector_artifact.method
        assert loaded.gpu == selector_artifact.gpu
        assert loaded.representatives == selector_artifact.representatives
        assert np.array_equal(
            selector_artifact.model.decision_function(X2D),
            loaded.model.decision_function(X2D),
        )

    def test_predictor_round_trip(self, predictor_artifact, tmp_path):
        from repro.profiling import regression_feature_size

        path = tmp_path / "pred.json"
        save_artifact(predictor_artifact, path)
        loaded = load_artifact(path)
        assert loaded.gpu is None
        assert loaded.meta == predictor_artifact.meta
        rng = np.random.default_rng(0)
        probe = rng.normal(size=(4, regression_feature_size(4)))
        assert np.array_equal(
            predictor_artifact.model.predict(probe), loaded.model.predict(probe)
        )

    def test_meta_and_schema_travel(self, selector_artifact, tmp_path):
        path = tmp_path / "sel.json"
        save_artifact(selector_artifact, path)
        doc = json.loads(path.read_text())
        assert doc["format"] == SERVE_FORMAT_VERSION
        assert doc["meta"]["train_rows"] > 0
        assert doc["feature_schema"] == selector_artifact.feature_schema

    def test_selector_requires_representatives(self, selector_artifact):
        with pytest.raises(ArtifactError, match="representatives"):
            ModelArtifact(
                kind="selector",
                method="gbdt",
                ndim=2,
                gpu="V100",
                model=selector_artifact.model,
            )

    def test_unknown_kind_rejected(self, selector_artifact):
        with pytest.raises(ArtifactError, match="unknown artifact kind"):
            ModelArtifact(
                kind="oracle", method="gbdt", ndim=2,
                model=selector_artifact.model,
            )


class TestArtifactRejection:
    def test_corrupt_weight_rejected(self, selector_artifact, tmp_path):
        """A flipped bit inside the model payload fails the checksum."""
        path = tmp_path / "sel.json"
        save_artifact(selector_artifact, path)
        doc = json.loads(path.read_text())
        data = doc["model"]["state"]["trees"][0][0]["value"]["data"]
        # Swap two base64 characters so the payload decodes but differs.
        mutated = data[:-4] + data[-2:] + data[-4:-2]
        assert mutated != data
        doc["model"]["state"]["trees"][0][0]["value"]["data"] = mutated
        path.write_text(json.dumps(doc))
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            load_artifact(path)

    def test_edited_metadata_rejected(self, selector_artifact, tmp_path):
        path = tmp_path / "sel.json"
        save_artifact(selector_artifact, path)
        doc = json.loads(path.read_text())
        doc["gpu"] = "A100"  # hand-edit without re-checksumming
        path.write_text(json.dumps(doc))
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            load_artifact(path)

    def test_truncated_file_rejected(self, selector_artifact, tmp_path):
        path = tmp_path / "sel.json"
        save_artifact(selector_artifact, path)
        path.write_text(path.read_text()[: 100])
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_artifact(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_artifact(tmp_path / "nope.json")

    def test_newer_format_version_names_both(
        self, selector_artifact, tmp_path
    ):
        """PR 1 convention: a newer document is rejected with a message
        naming the document's version and the supported one."""
        path = tmp_path / "sel.json"
        save_artifact(selector_artifact, path)
        doc = json.loads(path.read_text())
        newer = SERVE_FORMAT_VERSION + 1
        doc["format"] = newer
        payload = {k: v for k, v in doc.items() if k != "checksum"}
        doc["checksum"] = checksum_payload(payload)
        path.write_text(json.dumps(doc))
        with pytest.raises(ArtifactError) as exc:
            load_artifact(path)
        assert str(newer) in str(exc.value)
        assert str(SERVE_FORMAT_VERSION) in str(exc.value)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ArtifactError, match="must be an object"):
            load_artifact(path)


class TestRegistry:
    def test_publish_versions_and_latest(self, selector_artifact, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        name = default_artifact_name("selector", "gbdt", "V100", 2)
        assert name == "select-gbdt-V100-2d"
        assert reg.publish(selector_artifact, name) == "v000001"
        assert reg.publish(selector_artifact, name) == "v000002"
        assert reg.versions(name) == ["v000001", "v000002"]
        assert reg.latest(name) == "v000002"
        assert reg.names() == [name]
        loaded = reg.load(name)
        assert np.array_equal(
            selector_artifact.model.predict(X2D), loaded.model.predict(X2D)
        )

    def test_old_versions_stay_loadable(self, selector_artifact, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        reg.publish(selector_artifact, "m")
        reg.publish(selector_artifact, "m")
        assert reg.load("m", "v000001").kind == "selector"

    def test_missing_latest_tag_falls_back(self, selector_artifact, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        reg.publish(selector_artifact, "m")
        reg.publish(selector_artifact, "m")
        (reg.root / "m" / "LATEST").unlink()
        assert reg.latest("m") == "v000002"

    def test_dangling_latest_tag_rejected(self, selector_artifact, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        reg.publish(selector_artifact, "m")
        (reg.root / "m" / "LATEST").write_text("v000009\n")
        with pytest.raises(ArtifactError, match="LATEST"):
            reg.latest("m")

    def test_unknown_name_rejected(self, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        with pytest.raises(ArtifactError, match="no artifact named"):
            reg.versions("ghost")

    def test_path_traversal_rejected(self, tmp_path):
        reg = ModelRegistry(tmp_path / "reg")
        with pytest.raises(ArtifactError, match="bad artifact name"):
            reg.versions("../escape")

    def test_corrupt_published_artifact_fails_closed(
        self, selector_artifact, tmp_path
    ):
        reg = ModelRegistry(tmp_path / "reg")
        version = reg.publish(selector_artifact, "m")
        p = reg.path("m", version)
        p.write_text(p.read_text().replace('"kind"', '"kinb"', 1))
        with pytest.raises(ArtifactError):
            reg.load("m")
