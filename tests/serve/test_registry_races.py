"""Registry under races and torn states: every read fails closed.

A reader racing a publisher must see either the old tag or the new one
(both valid); a torn tag, a tag naming a deleted version file, or an
empty registry must raise a descriptive :class:`ArtifactError`, never
return garbage or crash with a raw OSError.
"""

import threading

import pytest

from repro.errors import ArtifactError
from repro.profiling.storage import atomic_write_text
from repro.serve import ModelRegistry


@pytest.fixture()
def registry(tmp_path, selector_artifact):
    reg = ModelRegistry(tmp_path / "models")
    reg.publish(selector_artifact, "sel")
    return reg


class TestConcurrentPublish:
    def test_parallel_publishes_get_distinct_versions(
        self, tmp_path, selector_artifact
    ):
        reg = ModelRegistry(tmp_path / "models")
        versions = []
        lock = threading.Lock()

        def publish():
            v = reg.publish(selector_artifact, "sel")
            with lock:
                versions.append(v)

        pool = [
            threading.Thread(target=publish, daemon=True) for _ in range(8)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join(timeout=30.0)
        assert sorted(versions) == [f"v{i:06d}" for i in range(1, 9)]
        assert reg.latest("sel") == "v000008"

    def test_latest_during_concurrent_publish_is_always_valid(
        self, registry, selector_artifact
    ):
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    v = registry.latest("sel")
                    # A valid version resolves to a loadable path.
                    assert registry.path("sel", v).exists()
                except BaseException as e:  # noqa: BLE001
                    failures.append(e)
                    return

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        for _ in range(10):
            registry.publish(selector_artifact, "sel")
        stop.set()
        t.join(timeout=30.0)
        assert failures == []


class TestTornStates:
    def test_empty_tag_is_descriptive_error(self, registry):
        atomic_write_text(registry.root / "sel" / "LATEST", "")
        with pytest.raises(ArtifactError, match="torn tag"):
            registry.latest("sel")

    def test_garbage_tag_is_descriptive_error(self, registry):
        atomic_write_text(registry.root / "sel" / "LATEST", "v999999\n")
        with pytest.raises(ArtifactError, match="LATEST tag points at"):
            registry.latest("sel")

    def test_tag_to_deleted_version_file(self, registry, selector_artifact):
        v2 = registry.publish(selector_artifact, "sel")
        (registry.root / "sel" / f"{v2}.json").unlink()
        with pytest.raises(ArtifactError, match="deleted"):
            registry.latest("sel")

    def test_directory_with_no_versions(self, registry):
        d = registry.root / "empty"
        d.mkdir()
        atomic_write_text(d / "LATEST", "v000001\n")
        with pytest.raises(ArtifactError):
            registry.latest("empty")

    def test_missing_name_fails_closed(self, registry):
        with pytest.raises(ArtifactError, match="no artifact named"):
            registry.latest("nope")

    def test_load_of_torn_registry_fails_closed(self, registry):
        atomic_write_text(registry.root / "sel" / "LATEST", "")
        with pytest.raises(ArtifactError):
            registry.load("sel")
