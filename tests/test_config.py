"""Tests for scale presets and global constants."""

import pytest

from repro.config import (
    DEFAULT_SEED,
    GRID_2D,
    GRID_3D,
    MAX_ORDER,
    N_MERGED_CLASSES,
    SCALES,
    get_scale,
)


class TestConstants:
    def test_paper_values(self):
        assert MAX_ORDER == 4
        assert GRID_2D == 8192
        assert GRID_3D == 512
        assert N_MERGED_CLASSES == 5

    def test_seed_is_stable(self):
        assert isinstance(DEFAULT_SEED, int)


class TestScales:
    def test_presets_exist(self):
        assert {"smoke", "small", "paper"} <= set(SCALES)

    def test_paper_scale_matches_section_va2(self):
        paper = SCALES["paper"]
        assert paper.n_stencils_2d == 500
        assert paper.n_stencils_3d == 500
        assert paper.nn_epochs == 100
        assert paper.n_folds == 5

    def test_scales_monotone(self):
        order = ["smoke", "small", "medium", "paper"]
        for a, b in zip(order, order[1:]):
            assert SCALES[a].n_stencils_2d <= SCALES[b].n_stencils_2d
            assert SCALES[a].n_settings <= SCALES[b].n_settings

    def test_get_scale_by_name(self):
        assert get_scale("smoke").name == "smoke"

    def test_get_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert get_scale().name == "medium"

    def test_get_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "small"

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("galactic")
