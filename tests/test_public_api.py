"""Public-API surface tests: imports, lazy loading, __all__ hygiene."""

import importlib

import pytest

import repro


SUBPACKAGES = (
    "stencil",
    "gpu",
    "engine",
    "optimizations",
    "profiling",
    "ml",
    "core",
    "baselines",
    "codegen",
)


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_lazy_subpackages(self):
        for name in SUBPACKAGES:
            assert getattr(repro, name) is importlib.import_module(f"repro.{name}")

    def test_stencilmart_shortcut(self):
        from repro.core import StencilMART

        assert repro.StencilMART is StencilMART

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist


class TestAllExportsResolve:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_every_all_entry_exists(self, name):
        mod = importlib.import_module(f"repro.{name}")
        exported = getattr(mod, "__all__", [])
        assert exported, f"repro.{name} should declare __all__"
        for symbol in exported:
            assert hasattr(mod, symbol), f"repro.{name}.{symbol} missing"

    def test_no_duplicate_exports(self):
        for name in SUBPACKAGES:
            mod = importlib.import_module(f"repro.{name}")
            exported = list(getattr(mod, "__all__", []))
            assert len(exported) == len(set(exported))


class TestErrorsHierarchy:
    def test_all_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError) or obj is Exception
