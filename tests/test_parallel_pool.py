"""WorkerPool: sequential bypass, pooled execution, worker-death semantics."""

import os

import pytest

from repro.errors import TransientError, WorkerLostError
from repro.parallel import POOL_CONTEXTS, WorkerPool, resolve_workers

# Task/initializer functions must be module-level to be picklable.
_INIT_VALUE = None


def _square(x):
    return x * x


def _init_with(value):
    global _INIT_VALUE
    _INIT_VALUE = value


def _read_init(_):
    return _INIT_VALUE


def _die_on_three(x):
    if x == 3:
        os._exit(1)
    return x


class TestResolveWorkers:
    def test_explicit_counts_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(5) == 5

    def test_auto_sizes_to_at_least_one(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(-2)

    def test_unknown_context_rejected(self):
        with pytest.raises(ValueError, match="context"):
            WorkerPool(2, context="thread")
        assert "spawn" in POOL_CONTEXTS and "fork" in POOL_CONTEXTS


class TestSequentialBypass:
    def test_map_is_a_plain_loop(self):
        pool = WorkerPool(1)
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert pool._executor is None  # never touched multiprocessing

    def test_initializer_runs_in_process_once(self):
        global _INIT_VALUE
        _INIT_VALUE = None
        pool = WorkerPool(1, initializer=_init_with, initargs=(42,))
        assert pool.map(_read_init, [0]) == [42]
        _INIT_VALUE = 7  # a second map must NOT re-run the initializer
        assert pool.map(_read_init, [0]) == [7]

    def test_map_unordered_yields_in_task_order(self):
        pool = WorkerPool(1)
        assert list(pool.map_unordered(_square, [3, 2])) == [(0, 9), (1, 4)]


class TestPooled:
    def test_map_matches_sequential(self):
        tasks = list(range(20))
        with WorkerPool(2, context="fork") as pool:
            assert pool.map(_square, tasks) == [t * t for t in tasks]

    def test_initializer_state_reaches_workers(self):
        with WorkerPool(2, context="fork", initializer=_init_with,
                        initargs=("shipped",)) as pool:
            assert pool.map(_read_init, [0, 1]) == ["shipped", "shipped"]

    def test_map_unordered_covers_every_task(self):
        with WorkerPool(2, context="fork") as pool:
            got = dict(pool.map_unordered(_square, [5, 6, 7]))
        assert got == {0: 25, 1: 36, 2: 49}

    def test_worker_death_raises_retryable_error(self):
        with WorkerPool(2, context="fork") as pool:
            with pytest.raises(WorkerLostError):
                pool.map(_die_on_three, [1, 2, 3, 4])
            # WorkerLostError is a TransientError: campaign machinery
            # treats a killed worker like any other retryable fault.
            assert issubclass(WorkerLostError, TransientError)
            # The pool restarts itself; the next map works.
            assert pool.map(_square, [2, 3]) == [4, 9]

    def test_spawn_context_is_importable(self):
        # spawn workers re-import task functions from scratch; one tiny
        # map proves the codepath is spawn-safe end to end.
        with WorkerPool(2, context="spawn") as pool:
            assert pool.map(_square, [4]) == [16]
