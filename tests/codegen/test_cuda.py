"""Structural tests for the CUDA source generator."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import generate_cuda
from repro.optimizations import OC, ParamSetting, sample_setting
from repro.stencil import box, generate_stencil, star
from repro.stencil.stencil import Stencil


def gen(stencil, oc, **params):
    return generate_cuda(stencil, oc, ParamSetting(**params))


class TestCommonStructure:
    def test_has_global_kernel(self):
        src = gen(star(2, 1), "naive")
        assert "__global__ void" in src
        assert "__restrict__" in src

    def test_tap_count_matches_nnz(self):
        s = box(2, 2)
        src = gen(s, "naive")
        assert src.count("acc +=") == s.nnz

    def test_boundary_guard_uses_order(self):
        s = star(2, 3)
        src = gen(s, "naive")
        assert ">= 3" in src and "- 3" in src

    def test_grid_dims_in_header(self):
        src = gen(star(3, 1), "naive")
        assert "#define NX 512" in src
        assert "#define NZ 512" in src
        src2 = gen(star(2, 1), "naive")
        assert "#define NX 8192" in src2

    def test_host_launcher_present(self):
        src = gen(star(2, 1), "naive")
        assert "dim3 block" in src and "dim3 grid" in src
        assert "<<<grid, block>>>" in src

    def test_oc_recorded_in_comment(self):
        src = gen(star(2, 1), "ST_PR", stream_dim=2)
        assert "optimization combination: ST_PR" in src

    def test_coefficient_defined(self):
        s = star(2, 1)
        src = gen(s, "naive")
        assert f"#define COEFF {1.0 / s.nnz!r}" in src

    def test_anisotropic_guard_clips_per_axis(self):
        # Extent 1 along x, 2 along y: each axis must be clipped by its
        # own extent, not the uniform Chebyshev order (which would skip
        # interior x points the performance model prices).
        aniso = Stencil.from_points(
            [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1), (0, 2), (0, -2)],
            name="aniso2d",
        )
        src = gen(aniso, "naive")
        assert "x0 >= 1 && x0 < NX - 1" in src
        assert "y0 >= 2 && y0 < NY - 2" in src


class TestShmem:
    def test_naive_has_no_shared(self):
        assert "__shared__" not in gen(star(2, 1), "naive")

    def test_smem_tile_declared(self):
        src = gen(star(2, 1), "naive", use_smem=1)
        assert "__shared__ double tile" in src
        assert "__syncthreads();" in src

    def test_tb_forces_shared(self):
        src = gen(star(2, 1), "TB", temporal_steps=2, block_y=16)
        assert "__shared__" in src
        assert "TSTEPS" in src


class TestStreaming:
    def test_plane_loop_over_stream_axis(self):
        src = gen(star(3, 2), "ST", stream_dim=3, use_smem=1)
        assert "for (int z = z_begin" in src
        assert "__shared__ double planes[5]" in src  # 2*2+1 planes

    def test_register_queue_without_smem(self):
        src = gen(star(3, 1), "ST", stream_dim=3)
        assert "double q[3 * STREAM_UNROLL]" in src

    def test_retiming_shrinks_register_queue(self):
        # RT folds taps as planes stream past: max(2, extent+1) planes
        # instead of the full 2*extent+1 window.
        src = gen(star(3, 3), "ST_RT", stream_dim=3)
        assert "double q[4 * STREAM_UNROLL]" in src

    def test_smem_queue_prologue_barrier(self):
        src = gen(star(3, 2), "ST", stream_dim=3, use_smem=1)
        assert "__syncthreads();  // queue visible before first read" in src

    def test_prefetch_double_buffer(self):
        src = gen(star(3, 1), "ST_PR", stream_dim=3)
        assert "next_plane" in src
        assert "overlap next load with compute" in src

    def test_prefetch_clamps_at_domain_edge(self):
        # The lookahead plane index must clamp to the last plane; an
        # unclamped z + extent + 1 reads past the grid on the final
        # iterations.
        src = gen(star(3, 1), "ST_PR", stream_dim=3)
        assert "in[_plane_index(min(z + 2, z_end - 1))]" in src

    def test_retiming_partial_accumulator(self):
        src = gen(star(3, 3), "ST_RT", stream_dim=3)
        assert "double partial" in src
        assert "acc += partial" in src

    def test_stream_tiles_in_grid(self):
        src = gen(star(3, 1), "ST", stream_dim=3, stream_tiles=4)
        assert "#define STREAM_TILES 4" in src
        assert "STREAM_TILES)" in src  # grid z dimension


class TestMerging:
    def test_block_merge_loop(self):
        src = gen(star(2, 1), "BM", merge_factor=4, merge_dim=2)
        assert "for (int mi = 0; mi < 4; ++mi)" in src
        assert "mi * 1" in src  # adjacent outputs

    def test_cyclic_merge_stride(self):
        src = gen(star(2, 1), "CM", merge_factor=4, merge_dim=2)
        assert "mi * BLOCK_Y" in src  # strided outputs

    def test_cyclic_merge_block_covers_merged_span(self):
        # Each block covers merge_factor * BLOCK_Y rows whichever way
        # the merged outputs are laid out; the base coordinate and the
        # grid must both account for the full span.
        src = gen(star(2, 1), "CM", merge_factor=4, merge_dim=2)
        assert "const int y0 = blockIdx.y * (BLOCK_Y * 4) + threadIdx.y;" in src
        assert "(NY + (BLOCK_Y * 4) - 1) / (BLOCK_Y * 4)" in src

    def test_unroll_pragma(self):
        src = gen(star(2, 1), "BM", merge_factor=2, merge_dim=2)
        assert "#pragma unroll" in src


class TestTemporal:
    def test_step_loop_and_launch_division(self):
        src = gen(star(2, 1), "TB", temporal_steps=4, block_x=64, block_y=16)
        assert "#define TSTEPS 4" in src
        assert "TIME_STEPS / TSTEPS" in src

    def test_streamed_tb(self):
        src = gen(
            star(3, 1), "ST_TB",
            stream_dim=3, temporal_steps=2, use_smem=1, block_y=16,
        )
        assert "__shared__ double planes" in src
        assert "TSTEPS" in src

    def test_streamed_tb_advances_time_planes(self):
        src = gen(
            star(3, 1), "ST_TB",
            stream_dim=3, temporal_steps=2, use_smem=1, block_y=16,
        )
        assert "_plane_time_update(step);" in src

    def test_tiled_tb_double_buffers_the_tile(self):
        src = gen(star(2, 1), "TB", temporal_steps=2, block_y=16)
        assert "__shared__ double tile[2][" in src


class TestPropertyStructural:
    @settings(max_examples=40, deadline=None)
    @given(
        ndim=st.sampled_from([2, 3]),
        order=st.integers(1, 3),
        seed=st.integers(0, 5000),
        oc_name=st.sampled_from(
            ["naive", "ST", "BM", "CM", "ST_RT", "ST_PR", "ST_CM_RT_PR"]
        ),
    )
    def test_generates_for_random_stencils(self, ndim, order, seed, oc_name):
        rng = np.random.default_rng(seed)
        s = generate_stencil(ndim, order, rng)
        oc = OC.parse(oc_name)
        setting = sample_setting(oc, ndim, rng)
        src = generate_cuda(s, oc, setting)
        # Invariants: kernel present, balanced braces, taps match nnz.
        assert "__global__ void" in src
        assert src.count("{") == src.count("}")
        taps = src.count("acc +=")
        if "RT" in oc_name.split("_"):
            taps -= 1  # the retimed partial-sum accumulation line
        assert taps >= s.nnz  # merging may replicate taps
        assert taps % s.nnz == 0
