"""Tests for the HIP dialect backend and the dialect split.

The emitter core is vendor-neutral; the CUDA and HIP generators are
thin dialect bindings over it.  Two contracts matter:

- HIP output differs from CUDA *only* in the host/runtime surface
  (includes, launch statement, sync/error calls, meta comment) -- the
  kernel body is byte-identical, since the generated device code uses
  only constructs HIP compiles natively.
- The CUDA path is bit-identical to the pre-split generator, pinned by
  a digest over the full library x OC x settings sweep.
"""

import hashlib

import pytest

from repro.codegen import (
    CUDA_DIALECT,
    HIP_DIALECT,
    dialect_for_gpu,
    generate_cuda,
    generate_hip,
    generate_source,
    get_dialect,
)
from repro.errors import OptimizationError
from repro.optimizations import ParamSetting
from repro.optimizations.combos import OC_BY_NAME
from repro.stencil import star

ST_RT = OC_BY_NAME["ST_RT"]
SETTING = ParamSetting(block_x=64, block_y=4, stream_dim=2, use_smem=1)


def _kernel_body(src: str) -> str:
    """The device code: from ``__global__`` to the host section."""
    start = src.index("__global__")
    end = src.index("#define TIME_STEPS")
    return src[start:end]


class TestHipEmission:
    def test_hip_surface(self):
        src = generate_hip(star(2, 1), ST_RT, SETTING)
        assert "#include <hip/hip_runtime.h>" in src
        assert "// dialect: hip" in src
        assert "hipLaunchKernelGGL(" in src
        assert "hipDeviceSynchronize();" in src
        assert "hipGetLastError() == hipSuccess" in src

    def test_no_cuda_runtime_residue(self):
        src = generate_hip(star(2, 1), ST_RT, SETTING)
        assert "cuda" not in src.lower()
        assert "<<<" not in src

    def test_kernel_body_identical_to_cuda(self):
        for oc_name in ("naive", "ST_RT", "CM_TB", "ST_BM_RT_PR_TB"):
            oc = OC_BY_NAME[oc_name]
            setting = ParamSetting(
                block_x=32, block_y=4, stream_dim=2, use_smem=1,
                temporal_steps=2,
            )
            cuda = generate_cuda(star(2, 1), oc, setting)
            hip = generate_hip(star(2, 1), oc, setting)
            assert _kernel_body(cuda) == _kernel_body(hip)

    def test_launch_preserves_kernel_and_args(self):
        cuda = generate_cuda(star(2, 1), ST_RT, SETTING)
        hip = generate_hip(star(2, 1), ST_RT, SETTING)
        assert "stencil_st_rt_2d<<<grid, block>>>(d_in, d_out, NX, NY);" in cuda
        assert (
            "hipLaunchKernelGGL(stencil_st_rt_2d, grid, block, 0, 0, "
            "d_in, d_out, NX, NY);" in hip
        )


class TestDialectResolution:
    def test_get_dialect(self):
        assert get_dialect("cuda") is CUDA_DIALECT
        assert get_dialect("hip") is HIP_DIALECT
        with pytest.raises(OptimizationError):
            get_dialect("sycl")

    def test_dialect_for_gpu(self):
        assert dialect_for_gpu("V100") is CUDA_DIALECT
        assert dialect_for_gpu("MI100") is HIP_DIALECT

    def test_generate_source_dispatch(self):
        cuda = generate_source(star(2, 1), ST_RT, SETTING)
        hip = generate_source(star(2, 1), ST_RT, SETTING, dialect=HIP_DIALECT)
        assert cuda == generate_cuda(star(2, 1), ST_RT, SETTING)
        assert hip == generate_hip(star(2, 1), ST_RT, SETTING)

    def test_suffixes(self):
        assert CUDA_DIALECT.source_suffix == ".cu"
        assert HIP_DIALECT.source_suffix == ".hip.cpp"


class TestCudaBitIdentity:
    def test_cuda_sweep_digest_unchanged(self):
        # Every (library stencil, OC, feasible setting) source, hashed.
        # The pin is the pre-split generator's output; any drift in the
        # CUDA path fails here even if the sources still compile.
        from repro.analysis.lint import feasible_settings
        from repro.optimizations.combos import ALL_OCS
        from repro.stencil.library import LIBRARY

        h = hashlib.blake2b(digest_size=16)
        n = 0
        for s in LIBRARY.values():
            for oc in ALL_OCS:
                for st in feasible_settings(s, oc, 1, seed=0):
                    h.update(generate_cuda(s, oc, st).encode())
                    n += 1
        assert n == 714
        assert h.hexdigest() == "87c16de18dff17bc877222030939ecd3"
