"""The hybrid regressor: learned GBDT over ML + analytical features.

Uses a tiny dedicated campaign (restricted OC list, one setting) so the
per-row analytical extraction stays fast; the session-scoped ``mart``
fixture would cost thousands of static analyses.
"""

import numpy as np
import pytest

from repro.analysis.perfmodel import ANALYTICAL_FEATURE_NAMES
from repro.core.framework import REGRESSORS, StencilMART
from repro.optimizations import OC_BY_NAME
from repro.profiling import merge_ocs, run_campaign
from repro.stencil import get

GPUS = ("V100", "A100")


@pytest.fixture(scope="module")
def hybrid_mart():
    stencils = [get(n) for n in ("star2d1r", "box2d1r", "star2d2r")]
    mart = StencilMART(2, gpus=GPUS, n_settings=1, n_classes=3, seed=13)
    mart.campaign = run_campaign(
        stencils,
        gpus=GPUS,
        ocs=[OC_BY_NAME[n] for n in ("naive", "ST", "ST_RT", "CM")],
        n_settings=1,
        seed=13,
    )
    mart.grouping = merge_ocs(mart.campaign, n_classes=3)
    return mart


class TestHybridPredictor:
    def test_registered(self):
        assert "hybrid" in REGRESSORS

    def test_feature_width(self, hybrid_mart):
        ds = hybrid_mart.regression_dataset()
        X = hybrid_mart._hybrid_features(ds)
        assert X.shape == (
            ds.n_samples,
            ds.features.shape[1] + len(ANALYTICAL_FEATURE_NAMES),
        )
        assert np.isfinite(X).all()

    def test_fit_and_predict(self, hybrid_mart):
        hybrid_mart.fit_predictor("hybrid", n_rounds=40)
        s = hybrid_mart.campaign.stencils[0]
        oc = OC_BY_NAME["ST"]
        setting = next(
            m.setting
            for m in hybrid_mart.campaign.measurements("V100")
            if m.stencil_id == 0 and m.oc == "ST"
        )
        t = hybrid_mart.predict_time(s, oc, setting, "V100", method="hybrid")
        assert 0 < t < 1e5

    def test_evaluate_is_finite(self, hybrid_mart):
        res = hybrid_mart.evaluate_predictor(
            "hybrid", "A100", n_folds=2, n_rounds=40
        )
        assert res.method == "hybrid"
        assert len(res.fold_mapes) == 2
        assert all(np.isfinite(m) and m >= 0 for m in res.fold_mapes)
