"""Tests for cross-GPU instances and the rental advisor."""

import pytest

from repro.core import (
    RentalAdvisor,
    build_cross_gpu_instances,
    ground_truth_shares,
)
from repro.errors import DatasetError
from repro.stencil import star, box


@pytest.fixture(scope="module")
def instances(mart):
    return build_cross_gpu_instances(
        mart.campaign.stencils[:10], ("V100", "A100"), n_per_stencil=3, seed=4
    )


class TestInstances:
    def test_measured_on_all_gpus(self, instances):
        for inst in instances:
            assert set(inst.times_ms) == {"V100", "A100"}
            assert all(t > 0 for t in inst.times_ms.values())

    def test_best_gpu_is_argmin(self, instances):
        inst = instances[0]
        assert inst.times_ms[inst.best_gpu()] == min(inst.times_ms.values())

    def test_cost_excludes_unpriced(self):
        insts = build_cross_gpu_instances(
            [star(2, 1)], ("2080Ti", "P100"), n_per_stencil=2, seed=0
        )
        # 2080Ti has no rental price; cost winner must be P100.
        assert insts[0].best_gpu_by_cost() == "P100"

    def test_deterministic(self, mart):
        a = build_cross_gpu_instances(
            mart.campaign.stencils[:3], ("V100",), n_per_stencil=2, seed=7
        )
        b = build_cross_gpu_instances(
            mart.campaign.stencils[:3], ("V100",), n_per_stencil=2, seed=7
        )
        assert [(i.oc, i.times_ms) for i in a] == [(i.oc, i.times_ms) for i in b]

    def test_ground_truth_shares_sum_to_one(self, instances):
        shares = ground_truth_shares(instances, ("V100", "A100"))
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_shares_empty_gpu_list_raises(self, instances):
        with pytest.raises(DatasetError):
            ground_truth_shares(instances, ("P100",))


class TestRentalAdvisor:
    @pytest.fixture(scope="class")
    def advisor(self, mart):
        mart.fit_predictor("gbr", max_rows=2000, n_rounds=40)
        return RentalAdvisor(mart, method="gbr")

    def test_recommend_fastest_returns_candidate(self, advisor, instances):
        rec = advisor.recommend_fastest(instances[0], ("V100", "A100"))
        assert rec in ("V100", "A100")

    def test_recommend_cheapest_only_rentals(self, advisor, instances):
        rec = advisor.recommend_cheapest(instances[0], ("V100", "A100"))
        assert rec in ("V100", "A100")

    def test_cheapest_rejects_unpriced_only(self, advisor, instances):
        with pytest.raises(DatasetError):
            advisor.recommend_cheapest(instances[0], ("2080Ti",))

    def test_evaluate_structure(self, advisor, instances):
        res = advisor.evaluate(instances, ("V100", "A100"))
        assert set(res.shares) == {"V100", "A100"}
        assert sum(res.shares.values()) == pytest.approx(1.0)
        assert 0.0 <= res.overall_accuracy <= 1.0

    def test_evaluate_by_cost(self, advisor, instances):
        res = advisor.evaluate(instances, ("V100", "A100"), by_cost=True)
        assert 0.0 <= res.overall_accuracy <= 1.0

    def test_better_than_random_on_easy_pair(self, mart):
        # 2080Ti vs A100 is an easy call (FP64 + bandwidth gulf); the
        # advisor must beat coin flipping by a wide margin.
        mart.fit_predictor("gbr", max_rows=2000, n_rounds=40)
        insts = build_cross_gpu_instances(
            [star(3, 1), box(3, 2), star(3, 3)],
            ("2080Ti", "A100"),
            n_per_stencil=4,
            seed=2,
        )
        adv = RentalAdvisor(mart, method="gbr")
        # Note: mart was trained on 2-D V100/A100 rows; hardware features
        # still separate these two GPUs by an order of magnitude.
        res = adv.evaluate(insts, ("2080Ti", "A100"))
        assert res.shares["A100"] > 0.8
