"""Shared fixture: one small fitted StencilMART instance."""

import pytest

from repro.core import StencilMART


@pytest.fixture(scope="session")
def mart():
    """A small two-GPU 2-D instance with a profiled dataset."""
    return StencilMART(
        ndim=2, gpus=("V100", "A100"), n_settings=4, seed=9
    ).build_dataset(n_stencils=24)
