"""Tests for the StencilMART facade."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.core import StencilMART
from repro.optimizations import OC, ParamSetting
from repro.stencil import get, star


class TestDataset:
    def test_requires_build(self):
        fresh = StencilMART(ndim=2)
        with pytest.raises(NotFittedError):
            fresh.classification_dataset("V100")

    def test_build_populates(self, mart):
        assert mart.campaign is not None
        assert mart.grouping.n_classes == 5

    def test_classification_dataset_shape(self, mart):
        ds = mart.classification_dataset("V100")
        assert ds.n_samples == 24
        assert ds.tensors.shape[1:] == (9, 9)

    def test_regression_dataset_filters_gpu(self, mart):
        one = mart.regression_dataset(("V100",))
        assert set(one.gpus) == {"V100"}

    def test_accepts_explicit_stencils(self):
        m = StencilMART(ndim=2, gpus=("V100",), n_settings=3, seed=1)
        m.build_dataset(stencils=[star(2, 1), star(2, 2), star(2, 3)])
        assert len(m.campaign.stencils) == 3


class TestSelector:
    def test_fit_and_predict(self, mart):
        mart.fit_selector("gbdt", "V100")
        oc = mart.predict_best_oc(get("star2d2r"), "V100")
        assert isinstance(oc, OC)
        assert oc.name in mart.grouping.representatives

    def test_predict_before_fit(self, mart):
        with pytest.raises(NotFittedError):
            mart.predict_best_oc(get("star2d1r"), "V100", method="fcnet")

    def test_unknown_method(self, mart):
        with pytest.raises(ModelError):
            mart.fit_selector("svm", "V100")

    def test_evaluate_selector_returns_folds(self, mart):
        r = mart.evaluate_selector("gbdt", "V100", n_folds=3)
        assert len(r.fold_accuracies) == 3
        assert 0.0 <= r.accuracy <= 1.0

    def test_convnet_path(self, mart):
        mart.fit_selector("convnet", "A100", epochs=3)
        oc = mart.predict_best_oc(get("box2d1r"), "A100", method="convnet")
        assert oc.name in mart.grouping.representatives


class TestTune:
    def test_tune_returns_valid_config(self, mart):
        mart.fit_selector("gbdt", "V100")
        oc, setting, t = mart.tune(get("star2d3r"), "V100")
        assert isinstance(setting, ParamSetting)
        assert t > 0

    def test_tuned_time_reasonable_vs_oracle(self, mart):
        from repro.baselines import OracleBaseline

        mart.fit_selector("gbdt", "V100")
        s = get("box2d2r")
        _, _, t = mart.tune(s, "V100")
        _, _, oracle_t = OracleBaseline("V100", 4, 9).tune(s)
        assert t >= oracle_t * 0.99  # oracle is a lower bound (same budget)
        assert t <= oracle_t * 10.0  # but prediction keeps us in range


class TestPredictor:
    def test_fit_and_predict_time(self, mart):
        mart.fit_predictor("gbr", max_rows=1500, n_rounds=30)
        t = mart.predict_time(
            get("star2d1r"), "ST", ParamSetting(stream_dim=2, use_smem=1), "V100",
            method="gbr",
        )
        assert t > 0

    def test_unknown_regressor(self, mart):
        with pytest.raises(ModelError):
            mart.fit_predictor("rf")

    def test_predict_before_fit(self, mart):
        with pytest.raises(NotFittedError):
            mart.predict_time(
                get("star2d1r"), "naive", ParamSetting(), "V100", method="convmlp"
            )

    def test_evaluate_predictor_mape(self, mart):
        r = mart.evaluate_predictor(
            "gbr", "V100", n_folds=3, max_rows=1200, n_rounds=30
        )
        assert len(r.fold_mapes) == 3
        assert r.mape < 80.0  # sane, scale-limited bound

    def test_row_subset_deterministic(self, mart):
        a = mart._row_subset(1000, 100)
        b = mart._row_subset(1000, 100)
        assert np.array_equal(a, b)
        assert len(a) == 100
