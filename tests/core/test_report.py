"""Tests for the report helpers."""

from repro.core.report import (
    campaign_summary,
    gap_report,
    grouping_summary,
    win_table,
)
from repro.profiling import merge_ocs


class TestReports:
    def test_campaign_summary_mentions_gpus(self, mart):
        text = campaign_summary(mart.campaign)
        for gpu in mart.gpus:
            assert gpu in text
        assert "measurements" in text

    def test_grouping_summary_lists_all_classes(self, mart):
        grouping = merge_ocs(mart.campaign, n_classes=5)
        text = grouping_summary(grouping)
        assert text.count("class ") == 5
        for rep in grouping.representatives:
            assert rep in text

    def test_win_table_counts_sum(self, mart):
        text = win_table(mart.campaign)
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()[1:]
        ]
        expected = sum(
            1 for gpu in mart.gpus for _ in mart.campaign.profiles[gpu]
        )
        assert sum(counts) == expected

    def test_gap_report_format(self, mart):
        text = gap_report(mart.campaign, "V100")
        assert "V100" in text and "mean" in text and "x" in text
