"""Extra coverage: every regressor path through the StencilMART facade."""

import numpy as np

from repro.optimizations import ParamSetting
from repro.stencil import get


class TestAllRegressorPaths:
    def test_mlp_fit_and_predict(self, mart):
        mart.fit_predictor("mlp", max_rows=1200, epochs=5, batch_size=64)
        t = mart.predict_time(
            get("star2d1r"), "ST", ParamSetting(stream_dim=2, use_smem=1),
            "V100", method="mlp",
        )
        assert np.isfinite(t) and t > 0

    def test_convmlp_fit_and_predict(self, mart):
        mart.fit_predictor("convmlp", max_rows=800, epochs=3, batch_size=64)
        t = mart.predict_time(
            get("box2d1r"), "naive", ParamSetting(), "A100", method="convmlp"
        )
        assert np.isfinite(t) and t > 0

    def test_predict_accepts_oc_object(self, mart):
        from repro.optimizations import OC

        mart.fit_predictor("gbr", max_rows=1200, n_rounds=30)
        a = mart.predict_time(
            get("star2d1r"), "ST_RT", ParamSetting(stream_dim=2), "V100",
            method="gbr",
        )
        b = mart.predict_time(
            get("star2d1r"), OC.parse("ST_RT"), ParamSetting(stream_dim=2),
            "V100", method="gbr",
        )
        assert a == b

    def test_hw_features_change_prediction(self, mart):
        mart.fit_predictor("gbr", max_rows=2000, n_rounds=40)
        s = get("star2d2r")
        setting = ParamSetting(stream_dim=2, use_smem=1)
        t_v100 = mart.predict_time(s, "ST", setting, "V100", method="gbr")
        t_a100 = mart.predict_time(s, "ST", setting, "A100", method="gbr")
        # The two architectures differ enough that a trained cross-GPU
        # model must not predict identical times.
        assert t_v100 != t_a100

    def test_evaluate_predictor_mlp_path(self, mart):
        r = mart.evaluate_predictor(
            "mlp", "A100", n_folds=2, max_rows=900, epochs=4, batch_size=64
        )
        assert len(r.fold_mapes) == 2
        assert all(np.isfinite(m) for m in r.fold_mapes)

    def test_evaluate_predictor_convmlp_path(self, mart):
        r = mart.evaluate_predictor(
            "convmlp", "A100", n_folds=2, max_rows=600, epochs=2, batch_size=64
        )
        assert len(r.fold_mapes) == 2
