"""Tests for normalization and target transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotFittedError
from repro.ml import LogTimeTransform, MaxNormalizer, one_hot


class TestMaxNormalizer:
    def test_scales_to_unit(self):
        X = np.array([[2.0, 10.0], [4.0, 5.0]])
        Xn = MaxNormalizer().fit_transform(X)
        assert Xn.max(axis=0).tolist() == [1.0, 1.0]

    def test_zero_column_passthrough(self):
        X = np.array([[0.0, 1.0], [0.0, 2.0]])
        Xn = MaxNormalizer().fit_transform(X)
        assert np.array_equal(Xn[:, 0], [0.0, 0.0])

    def test_transform_uses_train_scale(self):
        norm = MaxNormalizer().fit(np.array([[2.0], [4.0]]))
        assert norm.transform(np.array([[8.0]]))[0, 0] == 2.0

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MaxNormalizer().transform(np.ones((2, 2)))

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_train_range_bounded(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.random((30, 5)) * rng.integers(1, 100)
        Xn = MaxNormalizer().fit_transform(X)
        assert np.abs(Xn).max() <= 1.0 + 1e-12


class TestLogTimeTransform:
    def test_round_trip(self):
        t = np.array([0.5, 1.0, 123.0])
        back = LogTimeTransform.inverse(LogTimeTransform.forward(t))
        assert np.allclose(back, t)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            LogTimeTransform.forward(np.array([0.0]))

    def test_log2_values(self):
        assert LogTimeTransform.forward(np.array([8.0]))[0] == 3.0


class TestOneHot:
    def test_shape_and_values(self):
        oh = one_hot(np.array([0, 2, 1]), 3)
        assert oh.shape == (3, 3)
        assert oh.sum() == 3
        assert oh[1, 2] == 1.0

    def test_rows_sum_to_one(self):
        oh = one_hot(np.array([1, 1, 0, 3]), 4)
        assert np.array_equal(oh.sum(axis=1), np.ones(4))
