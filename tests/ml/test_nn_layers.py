"""Tests for NN layers, including numerical gradient checks."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.nn import ConvND, Dense, Dropout, Flatten, MSELoss, ReLU, Sequential
from repro.ml.nn import SoftmaxCrossEntropy


def numerical_grad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        hi = f()
        x[i] = old - eps
        lo = f()
        x[i] = old
        g[i] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


class TestDense:
    def test_forward_shape(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, rng)
        assert layer.forward(np.ones((5, 4))).shape == (5, 3)

    def test_shape_validation(self):
        layer = Dense(4, 3, np.random.default_rng(0))
        with pytest.raises(ModelError):
            layer.forward(np.ones((5, 2)))

    def test_gradcheck_weights(self):
        rng = np.random.default_rng(1)
        layer = Dense(3, 2, rng)
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))
        loss = MSELoss()

        def f():
            return loss.forward(layer.forward(x, training=True), target)

        f()
        layer.backward(loss.backward())
        num = numerical_grad(f, layer.W)
        assert np.allclose(layer.dW, num, atol=1e-5)

    def test_gradcheck_input(self):
        rng = np.random.default_rng(2)
        layer = Dense(3, 2, rng)
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))
        loss = MSELoss()

        def f():
            return loss.forward(layer.forward(x, training=True), target)

        f()
        dx = layer.backward(loss.backward())
        num = numerical_grad(f, x)
        assert np.allclose(dx, num, atol=1e-5)


class TestReLUFlatten:
    def test_relu_forward(self):
        r = ReLU()
        out = r.forward(np.array([[-1.0, 2.0]]), training=True)
        assert out.tolist() == [[0.0, 2.0]]

    def test_relu_backward_mask(self):
        r = ReLU()
        r.forward(np.array([[-1.0, 2.0]]), training=True)
        g = r.backward(np.array([[5.0, 5.0]]))
        assert g.tolist() == [[0.0, 5.0]]

    def test_flatten_round_trip(self):
        f = Flatten()
        x = np.arange(24.0).reshape(2, 3, 4)
        out = f.forward(x, training=True)
        assert out.shape == (2, 12)
        assert f.backward(out).shape == x.shape


class TestConvND:
    def test_output_shape_2d(self):
        rng = np.random.default_rng(0)
        conv = ConvND(1, 4, (9, 9), 3, rng)
        out = conv.forward(np.ones((2, 1, 9, 9)))
        assert out.shape == (2, 4, 7, 7)

    def test_output_shape_3d(self):
        rng = np.random.default_rng(0)
        conv = ConvND(1, 2, (9, 9, 9), 3, rng)
        out = conv.forward(np.ones((1, 1, 9, 9, 9)))
        assert out.shape == (1, 2, 7, 7, 7)

    def test_matches_manual_convolution(self):
        rng = np.random.default_rng(3)
        conv = ConvND(1, 1, (5, 5), 3, rng)
        x = rng.standard_normal((1, 1, 5, 5))
        out = conv.forward(x)
        K = conv.W[:, 0].reshape(3, 3)
        manual = np.zeros((3, 3))
        for i in range(3):
            for j in range(3):
                manual[i, j] = (x[0, 0, i : i + 3, j : j + 3] * K).sum()
        assert np.allclose(out[0, 0], manual + conv.b[0])

    @pytest.mark.parametrize(
        "channels,spatial,kernel",
        [
            (1, (9, 9), 3),
            (4, (9, 9), 3),
            (1, (9, 9, 9), 3),
            (3, (9, 9, 9), 3),
            (2, (7, 5, 6), 2),
        ],
    )
    def test_vectorized_index_matches_loop(self, channels, spatial, kernel):
        """The outer-sum gather table equals the per-element reference."""
        conv = ConvND(channels, 2, spatial, kernel, np.random.default_rng(1))
        assert np.array_equal(conv._index, conv._build_index_loop())

    def test_kernel_too_large(self):
        with pytest.raises(ModelError):
            ConvND(1, 1, (2, 2), 3, np.random.default_rng(0))

    def test_wrong_input_shape(self):
        conv = ConvND(1, 1, (5, 5), 3, np.random.default_rng(0))
        with pytest.raises(ModelError):
            conv.forward(np.ones((1, 2, 5, 5)))

    def test_gradcheck_weights_2d(self):
        rng = np.random.default_rng(4)
        conv = ConvND(1, 2, (4, 4), 3, rng)
        x = rng.standard_normal((2, 1, 4, 4))
        target = rng.standard_normal((2, 2, 2, 2))
        loss = MSELoss()

        def f():
            return loss.forward(
                conv.forward(x, training=True).reshape(2, -1),
                target.reshape(2, -1),
            )

        f()
        conv.backward(loss.backward().reshape(2, 2, 2, 2))
        num = numerical_grad(f, conv.W)
        assert np.allclose(conv.dW, num, atol=1e-5)

    def test_gradcheck_input_3d(self):
        rng = np.random.default_rng(5)
        conv = ConvND(1, 1, (4, 4, 4), 3, rng)
        x = rng.standard_normal((1, 1, 4, 4, 4))
        target = rng.standard_normal((1, 1, 2, 2, 2))
        loss = MSELoss()

        def f():
            return loss.forward(
                conv.forward(x, training=True).reshape(1, -1),
                target.reshape(1, -1),
            )

        f()
        dx = conv.backward(loss.backward().reshape(1, 1, 2, 2, 2))
        num = numerical_grad(f, x)
        assert np.allclose(dx, num, atol=1e-5)


class TestDropout:
    def test_inference_identity(self):
        d = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((4, 4))
        assert np.array_equal(d.forward(x, training=False), x)

    def test_training_zeroes_fraction(self):
        d = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((100, 100))
        out = d.forward(x, training=True)
        frac = (out == 0).mean()
        assert 0.4 < frac < 0.6

    def test_invalid_rate(self):
        with pytest.raises(ModelError):
            Dropout(1.0, np.random.default_rng(0))


class TestLosses:
    def test_softmax_ce_known_value(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[0.0, 0.0]])
        assert loss.forward(logits, np.array([0])) == pytest.approx(np.log(2))

    def test_softmax_ce_gradcheck(self):
        rng = np.random.default_rng(6)
        logits = rng.standard_normal((3, 4))
        labels = np.array([0, 2, 3])
        loss = SoftmaxCrossEntropy()

        def f():
            return loss.forward(logits, labels)

        f()
        g = loss.backward()
        num = numerical_grad(f, logits)
        assert np.allclose(g, num, atol=1e-6)

    def test_mse_gradcheck(self):
        rng = np.random.default_rng(7)
        pred = rng.standard_normal((4, 1))
        target = rng.standard_normal((4, 1))
        loss = MSELoss()

        def f():
            return loss.forward(pred, target)

        f()
        num = numerical_grad(f, pred)
        assert np.allclose(loss.backward(), num, atol=1e-6)


class TestSequentialGradFlow:
    def test_end_to_end_gradcheck(self):
        rng = np.random.default_rng(8)
        net = Sequential(
            [Dense(5, 4, rng), ReLU(), Dense(4, 2, rng)]
        )
        x = rng.standard_normal((3, 5))
        target = rng.standard_normal((3, 2))
        loss = MSELoss()

        def f():
            return loss.forward(net.forward(x, training=True), target)

        f()
        net.backward(loss.backward())
        first = net.layers[0]
        num = numerical_grad(f, first.W)
        assert np.allclose(first.dW, num, atol=1e-5)
