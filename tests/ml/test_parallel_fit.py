"""Parallel GBDT boosting and fold-parallel cross-validation.

Both parallelizations must be invisible in the results: per-class tree
fits within a boosting round depend only on round-start probabilities,
and CV folds fit independently seeded models, so any worker count
produces bit-identical models and identical fold scores.
"""

import numpy as np
import pytest

from repro.ml.gbdt import GBDTClassifier, GBRegressor
from repro.profiling.crossval import cross_validate, kfold_indices


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(42)
    X = rng.normal(size=(150, 10))
    y = (X[:, 0] > 0).astype(int) + (X[:, 1] + X[:, 2] > 0.5).astype(int)
    return X, y


def _sum_fold(data, train, test):
    return float(data[train].sum() - data[test].sum())


def _seeded_model_fold(data, train, test):
    X, y = data
    model = GBRegressor(n_rounds=5, seed=3).fit(X[train], y[train])
    return float(np.abs(model.predict(X[test]) - y[test]).mean())


class TestParallelGBDT:
    def test_parallel_fit_is_bit_identical(self, dataset):
        X, y = dataset
        seq = GBDTClassifier(n_rounds=12, subsample=0.8, seed=5).fit(X, y)
        par = GBDTClassifier(
            n_rounds=12, subsample=0.8, seed=5, workers=2,
            pool_context="fork",
        ).fit(X, y)
        assert np.array_equal(
            seq.decision_function(X), par.decision_function(X)
        )
        assert np.array_equal(seq.predict(X), par.predict(X))
        assert len(par.trees_) == 12
        assert all(len(round_) == seq.n_classes_ for round_ in par.trees_)

    def test_single_class_falls_back_to_sequential(self):
        X = np.ones((20, 3))
        y = np.zeros(20, dtype=int)
        model = GBDTClassifier(n_rounds=2, workers=4,
                               pool_context="fork").fit(X, y)
        assert model.n_classes_ == 1

    def test_regressor_accepts_and_ignores_workers(self, dataset):
        X, y = dataset
        seq = GBRegressor(n_rounds=5, seed=1).fit(X, y.astype(float))
        par = GBRegressor(n_rounds=5, seed=1, workers=4).fit(
            X, y.astype(float)
        )
        assert np.array_equal(seq.predict(X), par.predict(X))


class TestCrossValidate:
    def test_sequential_path_matches_plain_loop(self):
        data = np.arange(40, dtype=float)
        folds = list(kfold_indices(40, 4, seed=9))
        expected = [_sum_fold(data, tr, te) for tr, te in folds]
        assert cross_validate(_sum_fold, data, folds) == expected

    def test_parallel_folds_identical_and_ordered(self, dataset):
        X, y = dataset
        data = (X, y.astype(float))
        folds = list(kfold_indices(X.shape[0], 3, seed=9))
        seq = cross_validate(_seeded_model_fold, data, folds, workers=1)
        par = cross_validate(
            _seeded_model_fold, data, folds, workers=2, context="fork"
        )
        assert par == seq  # same values, same fold order
