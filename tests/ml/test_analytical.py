"""The analytical model family: zero-campaign predictor and selector.

They must behave like any other estimator at the serialization seam
(state_dict / from_state through the class-tagged envelope) while
answering from static analysis alone -- no fit call, no training data.
"""

import math

import numpy as np
import pytest

from repro.analysis.lint import feasible_settings
from repro.errors import ModelError
from repro.ml import (
    AnalyticalPredictor,
    AnalyticalSelector,
    model_from_state,
    model_state,
)
from repro.ml.analytical import DEFAULT_CANDIDATES
from repro.optimizations.combos import OC
from repro.stencil import get


def _setting(stencil, oc_name):
    return feasible_settings(stencil, OC.parse(oc_name), 1, 0)[0]


class TestPredictor:
    def test_predicts_positive_times(self):
        p = AnalyticalPredictor()
        s = get("star2d1r")
        t = p.predict_one(s, OC.parse("ST_RT"), _setting(s, "ST_RT"), "V100")
        assert 0 < t < 1e4

    def test_vectorized_matches_scalar(self):
        p = AnalyticalPredictor()
        s = get("box2d1r")
        reqs = [
            (s, OC.parse(name), _setting(s, name), gpu)
            for name in ("naive", "ST")
            for gpu in ("V100", "A100")
        ]
        times = p.predict_requests(reqs)
        assert times.shape == (4,)
        assert times.dtype == np.float64
        for got, r in zip(times, reqs):
            assert got == p.predict_one(*r)

    def test_infeasible_is_inf_not_raise(self):
        from repro.optimizations.params import ParamSetting

        p = AnalyticalPredictor()
        bad = ParamSetting(block_x=16, use_smem=1, stream_dim=2, temporal_steps=4)
        t = p.predict_one(get("star2d3r"), OC.parse("ST_RT_TB"), bad, "V100")
        assert math.isinf(t)

    def test_serialization_round_trip(self):
        p = AnalyticalPredictor(grid=(1024, 1024))
        q = model_from_state(model_state(p))
        assert isinstance(q, AnalyticalPredictor)
        assert q.grid == (1024, 1024)


class TestSelector:
    def test_selects_a_candidate(self):
        sel = AnalyticalSelector()
        choice = sel.select(get("star2d1r"), "V100")
        assert choice in DEFAULT_CANDIDATES

    def test_memoized_and_deterministic(self):
        a = AnalyticalSelector()
        b = AnalyticalSelector()
        s = get("star3d1r")
        first = a.select(s, "A100")
        assert a.select(s, "A100") == first  # memo path
        assert b.select(s, "A100") == first  # fresh instance agrees
        assert a._memo  # the memo actually filled

    def test_select_many_matches_select(self):
        sel = AnalyticalSelector(n_settings=1)
        stencils = [get(n) for n in ("star2d1r", "box2d1r")]
        assert sel.select_many(stencils, "V100") == [
            sel.select(s, "V100") for s in stencils
        ]

    def test_restricted_candidates_honored(self):
        sel = AnalyticalSelector(candidates=("naive",))
        assert sel.select(get("star2d1r"), "V100") == "naive"

    def test_serialization_round_trip(self):
        sel = AnalyticalSelector(
            candidates=("naive", "ST"), n_settings=3, seed=5, grid=(512, 512)
        )
        back = model_from_state(model_state(sel))
        assert isinstance(back, AnalyticalSelector)
        assert back.candidates == ("naive", "ST")
        assert back.n_settings == 3 and back.seed == 5
        assert back.grid == (512, 512)
        # Restored instance answers identically (fresh memo).
        s = get("star2d1r")
        assert back.select(s, "V100") == sel.select(s, "V100")

    def test_from_state_requires_candidates(self):
        with pytest.raises(ModelError, match="candidates"):
            AnalyticalSelector.from_state({"n_settings": 2})
