"""Tests for regression trees and gradient boosting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError, NotFittedError
from repro.ml import GBDTClassifier, GBRegressor, RegressionTree, accuracy, mape


def _make_regression(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 6))
    y = 4 * X[:, 0] + np.sin(5 * X[:, 1]) + (X[:, 2] > 0.5) * 2.0 + 3.0
    return X, y


class TestRegressionTree:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = (X[:, 0] > 0.5).astype(float)
        # Newton step on squared loss: grad = pred0 - y with pred0 = 0.
        tree = RegressionTree(max_depth=2, reg_lambda=0.0).fit(X, -y, np.ones(100))
        pred = tree.predict(X)
        assert np.allclose(pred, y, atol=1e-9)

    def test_depth_limit(self):
        X, y = _make_regression()
        tree = RegressionTree(max_depth=2).fit(X, -y, np.ones(len(y)))
        assert tree.depth <= 2

    def test_single_leaf_when_no_split(self):
        X = np.ones((10, 3))  # constant features: nothing to split on
        tree = RegressionTree().fit(X, -np.arange(10.0), np.ones(10))
        assert tree.n_nodes == 1

    def test_leaf_value_is_regularized_mean(self):
        X = np.ones((4, 1))
        g = np.array([-1.0, -1.0, -1.0, -1.0])
        tree = RegressionTree(reg_lambda=0.0).fit(X, g, np.ones(4))
        assert tree.predict(X)[0] == pytest.approx(1.0)

    def test_min_child_weight_blocks_split(self):
        X = np.array([[0.0], [1.0]])
        tree = RegressionTree(min_child_weight=2.0).fit(
            X, np.array([-1.0, 1.0]), np.ones(2)
        )
        assert tree.n_nodes == 1

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RegressionTree().predict(np.ones((1, 1)))

    def test_shape_validation(self):
        with pytest.raises(ModelError):
            RegressionTree().fit(np.ones((3, 2)), np.ones(4), np.ones(4))

    def test_feature_importance_counts_splits(self):
        X, y = _make_regression()
        tree = RegressionTree(max_depth=3).fit(X, -y, np.ones(len(y)))
        imp = tree.feature_importance(6)
        assert imp.sum() == (tree.n_nodes - 1) / 2  # internal nodes
        assert imp[0] > 0  # strongest signal feature used


class TestGBRegressor:
    def test_beats_mean_baseline(self):
        X, y = _make_regression(400)
        model = GBRegressor(n_rounds=60, learning_rate=0.2, seed=0).fit(
            X[:300], y[:300]
        )
        pred = model.predict(X[300:])
        mean_err = np.abs(y[300:] - y[:300].mean()).mean()
        model_err = np.abs(y[300:] - pred).mean()
        assert model_err < 0.3 * mean_err

    def test_more_rounds_lower_train_error(self):
        X, y = _make_regression(200)
        few = GBRegressor(n_rounds=5, learning_rate=0.1, seed=0).fit(X, y)
        many = GBRegressor(n_rounds=80, learning_rate=0.1, seed=0).fit(X, y)
        assert mape(y, many.predict(X)) < mape(y, few.predict(X))

    def test_staged_matches_final(self):
        X, y = _make_regression(100)
        m = GBRegressor(n_rounds=10, seed=0).fit(X, y)
        staged = m.staged_predict(X)
        assert len(staged) == 10
        assert np.allclose(staged[-1], m.predict(X))

    def test_deterministic(self):
        X, y = _make_regression(150)
        a = GBRegressor(n_rounds=20, subsample=0.7, seed=3).fit(X, y).predict(X)
        b = GBRegressor(n_rounds=20, subsample=0.7, seed=3).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ModelError):
            GBRegressor(subsample=0.0)
        with pytest.raises(ModelError):
            GBRegressor(n_rounds=0)
        with pytest.raises(ModelError):
            GBRegressor().fit(np.ones((3, 2)), np.ones(4))

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            GBRegressor().predict(np.ones((1, 2)))


class TestGBDTClassifier:
    def _make_classification(self, n=400, seed=1):
        rng = np.random.default_rng(seed)
        X = rng.random((n, 5))
        y = (X[:, 0] + X[:, 1] > 1.0).astype(int) + 2 * (X[:, 2] > 0.6).astype(int)
        return X, y

    def test_learns_separable_classes(self):
        X, y = self._make_classification()
        m = GBDTClassifier(n_rounds=40, learning_rate=0.3, seed=0).fit(X[:300], y[:300])
        assert accuracy(y[300:], m.predict(X[300:])) > 0.85

    def test_proba_rows_sum_to_one(self):
        X, y = self._make_classification(100)
        m = GBDTClassifier(n_rounds=10, seed=0).fit(X, y)
        p = m.predict_proba(X)
        assert p.shape == (100, 4)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_predict_matches_argmax_proba(self):
        X, y = self._make_classification(100)
        m = GBDTClassifier(n_rounds=10, seed=0).fit(X, y)
        assert np.array_equal(m.predict(X), m.predict_proba(X).argmax(axis=1))

    def test_binary_case(self):
        rng = np.random.default_rng(2)
        X = rng.random((200, 3))
        y = (X[:, 0] > 0.5).astype(int)
        m = GBDTClassifier(n_rounds=20, learning_rate=0.3, seed=0).fit(X, y)
        assert accuracy(y, m.predict(X)) > 0.95

    def test_rejects_negative_labels(self):
        with pytest.raises(ModelError):
            GBDTClassifier().fit(np.ones((2, 2)), np.array([-1, 0]))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            GBDTClassifier().predict(np.ones((1, 2)))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_proba_valid_distribution(self, seed):
        X, y = self._make_classification(80, seed)
        m = GBDTClassifier(n_rounds=5, seed=0).fit(X, y)
        p = m.predict_proba(X)
        assert (p >= 0).all() and (p <= 1).all()
