"""Tests for the four paper models (ConvNet, FcNet, MLP, ConvMLP)."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml import (
    ConvMLPRegressor,
    ConvNetClassifier,
    FcNetClassifier,
    MLPRegressor,
    accuracy,
    mape,
)


def _classification_tensors(n=240, seed=0):
    """Binary 9x9 tensors whose label depends on simple structure."""
    rng = np.random.default_rng(seed)
    T = np.zeros((n, 9, 9))
    labels = rng.integers(0, 3, size=n)
    for i, lab in enumerate(labels):
        T[i, 4, 4] = 1.0
        if lab == 0:  # horizontal bar
            T[i, 4, 2:7] = 1.0
        elif lab == 1:  # vertical bar
            T[i, 2:7, 4] = 1.0
        else:  # diagonal
            for k in range(-2, 3):
                T[i, 4 + k, 4 + k] = 1.0
        # sparse noise
        for _ in range(3):
            T[i, rng.integers(9), rng.integers(9)] = 1.0
    return T, labels


class TestConvNetClassifier:
    def test_learns_structured_patterns(self):
        T, y = _classification_tensors()
        m = ConvNetClassifier(n_classes=3, epochs=30, seed=0).fit(T[:180], y[:180])
        assert accuracy(y[180:], m.predict(T[180:])) > 0.8

    def test_proba_distribution(self):
        T, y = _classification_tensors(60)
        m = ConvNetClassifier(n_classes=3, epochs=5, seed=0).fit(T, y)
        p = m.predict_proba(T)
        assert p.shape == (60, 3)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_3d_input_supported(self):
        rng = np.random.default_rng(0)
        T = rng.integers(0, 2, size=(40, 9, 9, 9)).astype(float)
        y = (T[:, 4, 4, 4] > 0).astype(int)
        m = ConvNetClassifier(
            n_classes=2, channels=(4, 8), epochs=3, seed=0
        ).fit(T, y)
        assert m.predict(T).shape == (40,)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            ConvNetClassifier(n_classes=2).predict(np.ones((1, 9, 9)))

    def test_deterministic(self):
        T, y = _classification_tensors(60)
        a = ConvNetClassifier(n_classes=3, epochs=3, seed=5).fit(T, y).predict(T)
        b = ConvNetClassifier(n_classes=3, epochs=3, seed=5).fit(T, y).predict(T)
        assert np.array_equal(a, b)

    def test_training_loss_decreases(self):
        T, y = _classification_tensors(120)
        m = ConvNetClassifier(n_classes=3, epochs=15, seed=0).fit(T, y)
        assert m.history_[-1] < m.history_[0]


class TestFcNetClassifier:
    def test_learns_structured_patterns(self):
        T, y = _classification_tensors()
        m = FcNetClassifier(n_classes=3, epochs=40, seed=0).fit(T[:180], y[:180])
        assert accuracy(y[180:], m.predict(T[180:])) > 0.7

    def test_requires_hidden_layers(self):
        with pytest.raises(ModelError):
            FcNetClassifier(n_classes=2, hidden=())

    def test_layer_count_configurable(self):
        T, y = _classification_tensors(60)
        m = FcNetClassifier(
            n_classes=3, hidden=(32, 32, 32, 32), epochs=2, seed=0
        ).fit(T, y)
        # 4 hidden Dense + 1 output Dense, each with ReLU except output.
        assert len(m._net.layers) == 9


class TestMLPRegressor:
    def _data(self, n=600, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.random((n, 8))
        times = np.exp2(3 * X[:, 0] + X[:, 1] - 1)
        return X, times

    def test_low_mape_on_smooth_target(self):
        X, t = self._data()
        m = MLPRegressor(n_layers=4, layer_size=32, epochs=60, seed=0).fit(
            X[:450], t[:450]
        )
        assert mape(t[450:], m.predict(X[450:])) < 12.0

    def test_predictions_positive(self):
        X, t = self._data(100)
        m = MLPRegressor(n_layers=2, layer_size=16, epochs=5, seed=0).fit(X, t)
        assert (m.predict(X) > 0).all()

    def test_layer_count_validation(self):
        with pytest.raises(ModelError):
            MLPRegressor(n_layers=0)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MLPRegressor().predict(np.ones((1, 3)))

    def test_seven_layer_default(self):
        assert MLPRegressor().n_layers == 7


class TestConvMLPRegressor:
    def _data(self, n=300, seed=0):
        rng = np.random.default_rng(seed)
        T = rng.integers(0, 2, size=(n, 9, 9)).astype(float)
        aux = rng.random((n, 5))
        times = np.exp2(T.mean(axis=(1, 2)) * 4 + aux[:, 0])
        return T, aux, times

    def test_learns_joint_signal(self):
        # batch_size below the sample count: the paper's 256 would mean a
        # single Adam step per epoch at this toy size.
        T, aux, t = self._data()
        m = ConvMLPRegressor(epochs=40, batch_size=32, seed=0).fit(
            T[:220], aux[:220], t[:220]
        )
        assert mape(t[220:], m.predict(T[220:], aux[220:])) < 20.0

    def test_batch_mismatch_raises(self):
        T, aux, t = self._data(20)
        m = ConvMLPRegressor(epochs=1, seed=0).fit(T, aux, t)
        with pytest.raises(ModelError):
            m.predict(T[:5], aux[:4])

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            ConvMLPRegressor().predict(np.ones((1, 9, 9)), np.ones((1, 5)))

    def test_3d_branch(self):
        rng = np.random.default_rng(1)
        T = rng.integers(0, 2, size=(30, 9, 9, 9)).astype(float)
        aux = rng.random((30, 4))
        t = np.exp2(aux[:, 0] + 1)
        m = ConvMLPRegressor(channels=(2, 4), epochs=2, seed=0).fit(T, aux, t)
        assert m.predict(T, aux).shape == (30,)
