"""Tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.ml import accuracy, confusion_matrix, kendall_tau, mape, pcc, top_k_accuracy


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, 2, 3], [1, 2, 3]) == 1.0

    def test_half(self):
        assert accuracy([0, 0, 1, 1], [0, 1, 1, 0]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            accuracy([1, 2], [1, 2, 3])

    def test_empty(self):
        with pytest.raises(ModelError):
            accuracy([], [])


class TestMAPE:
    def test_exact_is_zero(self):
        assert mape([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        # |10-9|/10 = 10%, |20-22|/20 = 10% -> mean 10%
        assert mape([10.0, 20.0], [9.0, 22.0]) == pytest.approx(10.0)

    def test_rejects_nonpositive_targets(self):
        with pytest.raises(ModelError):
            mape([0.0, 1.0], [1.0, 1.0])

    @settings(max_examples=30, deadline=None)
    @given(scale=st.floats(0.01, 100.0))
    def test_scale_invariant(self, scale):
        t = np.array([1.0, 2.0, 4.0])
        p = np.array([1.1, 1.9, 4.4])
        assert mape(t, p) == pytest.approx(mape(t * scale, p * scale))


class TestPCC:
    def test_identity(self):
        x = np.arange(10.0)
        assert pcc(x, x) == pytest.approx(1.0)

    def test_negation(self):
        x = np.arange(10.0)
        assert pcc(x, -x) == pytest.approx(-1.0)

    def test_constant_inputs(self):
        assert pcc([1.0, 1.0, 1.0], [2.0, 2.0, 2.0]) == 1.0
        assert pcc([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_bounded(self, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.random(20), rng.random(20)
        assert -1.0 <= pcc(a, b) <= 1.0


class TestKendall:
    def test_same_order(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_reversed(self):
        assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)


class TestConfusion:
    def test_diagonal(self):
        m = confusion_matrix([0, 1, 2], [0, 1, 2], 3)
        assert np.array_equal(m, np.eye(3, dtype=int))

    def test_off_diagonal(self):
        m = confusion_matrix([0, 0], [1, 1], 2)
        assert m[0, 1] == 2 and m.sum() == 2

    def test_out_of_range(self):
        with pytest.raises(ModelError):
            confusion_matrix([0, 3], [0, 1], 3)


class TestTopK:
    def test_top1_equals_accuracy(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        y = np.array([0, 1, 1])
        assert top_k_accuracy(y, scores, 1) == accuracy(y, scores.argmax(axis=1))

    def test_top_n_is_one(self):
        scores = np.random.default_rng(0).random((10, 4))
        y = np.array([0, 1, 2, 3] * 2 + [0, 1])
        assert top_k_accuracy(y, scores, 4) == 1.0

    def test_bad_shape(self):
        with pytest.raises(ModelError):
            top_k_accuracy([0, 1], np.zeros((3, 2)), 1)
