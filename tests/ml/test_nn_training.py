"""Tests for optimizers, network containers and the training loop."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.nn import (
    Adam,
    Dense,
    Flatten,
    MSELoss,
    ReLU,
    SGD,
    Sequential,
    TwoBranch,
    train_epochs,
)


def _quadratic_params():
    # Minimise ||w - target||^2 through the optimizer interface.
    w = np.array([5.0, -3.0])
    target = np.array([1.0, 2.0])
    return w, target


class TestSGD:
    def test_descends(self):
        w, target = _quadratic_params()
        opt = SGD(lr=0.1)
        for _ in range(100):
            grad = 2 * (w - target)
            opt.step([(w, grad)])
        assert np.allclose(w, target, atol=1e-3)

    def test_momentum_accelerates(self):
        def loss_after(steps, momentum):
            w, target = _quadratic_params()
            opt = SGD(lr=0.02, momentum=momentum)
            for _ in range(steps):
                opt.step([(w, 2 * (w - target))])
            return float(((w - target) ** 2).sum())

        assert loss_after(30, 0.9) < loss_after(30, 0.0)

    def test_rejects_bad_lr(self):
        with pytest.raises(ModelError):
            SGD(lr=0.0)


class TestAdam:
    def test_descends(self):
        w, target = _quadratic_params()
        opt = Adam(lr=0.1)
        for _ in range(300):
            opt.step([(w, 2 * (w - target))])
        assert np.allclose(w, target, atol=1e-2)

    def test_state_per_parameter(self):
        a = np.array([1.0])
        b = np.array([10.0])
        opt = Adam(lr=0.1)
        opt.step([(a, np.array([1.0])), (b, np.array([-1.0]))])
        # Opposite gradient signs move the parameters in opposite directions.
        assert a[0] < 1.0 and b[0] > 10.0

    def test_bias_correction_first_step(self):
        w = np.array([0.0])
        Adam(lr=0.5).step([(w, np.array([1.0]))])
        # First Adam step is ~lr regardless of gradient magnitude.
        assert w[0] == pytest.approx(-0.5, abs=1e-6)


class TestSequential:
    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            Sequential([])

    def test_param_collection(self):
        rng = np.random.default_rng(0)
        net = Sequential([Dense(3, 4, rng), ReLU(), Dense(4, 2, rng)])
        assert len(net.params_and_grads()) == 4  # two W, two b


class TestTwoBranch:
    def _net(self):
        rng = np.random.default_rng(1)
        a = Sequential([Flatten(), Dense(4, 3, rng)])
        b = Sequential([Dense(2, 3, rng)])
        head = Sequential([Dense(6, 1, rng)])
        return TwoBranch(a, b, head)

    def test_forward_concatenates(self):
        net = self._net()
        out = net.forward(np.ones((5, 2, 2)), np.ones((5, 2)))
        assert out.shape == (5, 1)

    def test_batch_mismatch(self):
        net = self._net()
        with pytest.raises(ModelError):
            net.forward(np.ones((5, 2, 2)), np.ones((4, 2)))

    def test_backward_routes_both_branches(self):
        net = self._net()
        xa, xb = np.ones((3, 2, 2)), np.ones((3, 2))
        net.forward(xa, xb, training=True)
        ga, gb = net.backward(np.ones((3, 1)))
        assert ga.shape == xa.shape and gb.shape == xb.shape

    def test_backward_before_forward(self):
        with pytest.raises(ModelError):
            self._net().backward(np.ones((3, 1)))


class TestTrainEpochs:
    def test_loss_decreases_on_linear_task(self):
        rng = np.random.default_rng(2)
        X = rng.random((200, 4))
        y = (X @ np.array([1.0, -2.0, 0.5, 3.0]))[:, None]
        net = Sequential([Dense(4, 8, rng), ReLU(), Dense(8, 1, rng)])
        loss = MSELoss()

        def fwd_bwd(batch, targets):
            (xb,) = batch
            value = loss.forward(net.forward(xb, training=True), targets)
            net.backward(loss.backward())
            return value

        history = train_epochs(
            (X,), y, fwd_bwd, net.params_and_grads, Adam(1e-2), 30, 32, rng
        )
        assert history[-1] < 0.1 * history[0]

    def test_input_mismatch(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ModelError):
            train_epochs(
                (np.ones((5, 2)),), np.ones((4, 1)), lambda b, t: 0.0,
                list, Adam(), 1, 2, rng,
            )
