"""Crash-safe persistence and format-version gating."""

import os

import pytest

from repro.errors import DatasetError
from repro.profiling import load_campaign, save_campaign
from repro.profiling.storage import (
    FORMAT_VERSION,
    atomic_write_text,
    campaign_from_dict,
    campaign_to_dict,
)


class TestAtomicWrite:
    def test_round_trip(self, tmp_path):
        p = tmp_path / "doc.json"
        atomic_write_text(p, "hello")
        assert p.read_text() == "hello"

    def test_overwrite(self, tmp_path):
        p = tmp_path / "doc.json"
        p.write_text("old")
        atomic_write_text(p, "new")
        assert p.read_text() == "new"

    def test_no_temp_files_after_success(self, tmp_path):
        p = tmp_path / "doc.json"
        atomic_write_text(p, "x")
        assert [f.name for f in tmp_path.iterdir()] == ["doc.json"]

    def test_interrupt_preserves_previous_document(self, tmp_path,
                                                   monkeypatch):
        p = tmp_path / "doc.json"
        p.write_text("precious")

        def explode(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            atomic_write_text(p, "partial")
        monkeypatch.undo()
        assert p.read_text() == "precious"
        assert [f.name for f in tmp_path.iterdir()] == ["doc.json"]

    def test_save_campaign_is_atomic(self, baseline_campaign, tmp_path,
                                     monkeypatch):
        p = tmp_path / "c.json"
        save_campaign(baseline_campaign, p)
        before = p.read_text()

        def explode(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError):
            save_campaign(baseline_campaign, p)
        monkeypatch.undo()
        assert p.read_text() == before
        assert [f.name for f in tmp_path.iterdir()] == ["c.json"]
        assert load_campaign(p).seed == baseline_campaign.seed


class TestFormatVersionGate:
    def test_newer_version_names_both_versions(self, baseline_campaign):
        doc = campaign_to_dict(baseline_campaign)
        doc["format"] = FORMAT_VERSION + 1
        with pytest.raises(DatasetError) as exc:
            campaign_from_dict(doc)
        msg = str(exc.value)
        assert f"format_version {FORMAT_VERSION + 1}" in msg
        assert f"FORMAT_VERSION {FORMAT_VERSION}" in msg
        assert "upgrade" in msg

    def test_unknown_version_still_rejected(self, baseline_campaign):
        doc = campaign_to_dict(baseline_campaign)
        doc["format"] = 0
        with pytest.raises(DatasetError, match="unsupported"):
            campaign_from_dict(doc)

    def test_missing_version_rejected(self, baseline_campaign):
        doc = campaign_to_dict(baseline_campaign)
        del doc["format"]
        with pytest.raises(DatasetError, match="unsupported"):
            campaign_from_dict(doc)

    def test_current_version_accepted(self, baseline_campaign):
        doc = campaign_to_dict(baseline_campaign)
        loaded = campaign_from_dict(doc)
        assert campaign_to_dict(loaded) == doc
