"""Shared fixtures for the robustness suite.

Campaigns here deliberately use a *subset* of OCs: the fault-tolerance
machinery is orthogonal to OC coverage, and 8 OCs keep the suite fast
while still exercising crash-prone combinations.
"""

import pytest

from repro.optimizations.combos import ALL_OCS
from repro.stencil import generate_population

#: OC subset used throughout this package.
OCS = ALL_OCS[:8]


def copy_campaign(campaign):
    """Deep-copy a campaign via its serialized form.

    ``copy.deepcopy`` chokes on the mappingproxy inside settings, and the
    storage round trip is the representation robustness tests care about
    anyway.
    """
    from repro.profiling.storage import campaign_from_dict, campaign_to_dict

    return campaign_from_dict(campaign_to_dict(campaign))


@pytest.fixture(scope="session")
def population():
    return generate_population(2, 4, seed=11)


@pytest.fixture(scope="session")
def baseline_campaign(population):
    """The fault-free reference campaign every equality test compares to."""
    from repro.profiling import run_campaign

    return run_campaign(
        population, gpus=("V100", "P100"), ocs=OCS, n_settings=3, seed=7
    )
