"""Sharded campaign execution: determinism, worker crashes, cross-count resume.

Units are self-contained (seed-derived sampling streams, unit-scoped
fault draws), so the sharded runner must produce campaigns bit-identical
to the sequential one for every worker count and chunk size, absorb
killed workers as retryable faults, and resume a checkpoint written
under any ``--workers`` value with any other.

The one quantity allowed to drift is ``health.backoff_s``: it is a float
accumulated in merge order, so parallel runs may differ from sequential
in the last few ulps (the campaign itself, and every integer counter,
stays exactly equal).
"""

import json

import pytest

from repro.errors import CampaignInterrupted
from repro.gpu.faults import FaultConfig
from repro.profiling import CampaignHealth, CampaignRunner
from repro.profiling.storage import campaign_to_dict

from .conftest import OCS


def _runner(population, ck, **overrides):
    kwargs = dict(
        gpus=("V100", "P100"),
        ocs=OCS,
        n_settings=3,
        seed=7,
        faults=FaultConfig.uniform(0.02),
        checkpoint_path=ck,
        checkpoint_every=2,
        mp_context="fork",
    )
    kwargs.update(overrides)
    return CampaignRunner(population, **kwargs)


def _health_counters(health):
    doc = health.to_dict()
    doc.pop("backoff_s", None)
    doc.pop("units_resumed", None)
    return doc


class TestWorkerSweepDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_campaign_bit_identical_to_sequential(
        self, population, baseline_campaign, tmp_path, workers
    ):
        runner = _runner(population, tmp_path / "ck.json", workers=workers)
        campaign = runner.run()
        assert campaign_to_dict(campaign) == campaign_to_dict(
            baseline_campaign
        )

    def test_chunk_size_does_not_change_results(
        self, population, baseline_campaign, tmp_path
    ):
        runner = _runner(
            population, tmp_path / "ck.json", workers=2, chunk_size=1
        )
        campaign = runner.run()
        assert campaign_to_dict(campaign) == campaign_to_dict(
            baseline_campaign
        )

    def test_checkpoints_and_health_match_sequential(
        self, population, tmp_path
    ):
        docs, healths = [], []
        for workers in (1, 2, 4):
            ck = tmp_path / f"ck-{workers}.json"
            runner = _runner(population, ck, workers=workers)
            runner.run()
            doc = json.loads(ck.read_text())
            healths.append(doc["health"])
            doc.pop("health")
            docs.append(doc)
        assert docs[0] == docs[1] == docs[2]
        for h in healths[1:]:
            a, b = dict(healths[0]), dict(h)
            sa, sb = a.pop("backoff_s"), b.pop("backoff_s")
            assert a == b
            assert sb == pytest.approx(sa, rel=1e-9)

    def test_four_gpu_slice_bit_identical(self, population, tmp_path):
        from repro.gpu.specs import GPU_ORDER

        stencils = population[:2]
        kwargs = dict(
            ocs=OCS[:4], n_settings=2, seed=7,
            faults=FaultConfig.uniform(0.02), mp_context="fork",
        )
        sequential = CampaignRunner(stencils, gpus=GPU_ORDER, **kwargs).run()
        sharded = CampaignRunner(
            stencils, gpus=GPU_ORDER, workers=4, **kwargs
        ).run()
        assert campaign_to_dict(sharded) == campaign_to_dict(sequential)

    def test_no_shard_files_left_behind(self, population, tmp_path):
        ck = tmp_path / "ck.json"
        _runner(population, ck, workers=2).run()
        leftovers = [p for p in tmp_path.iterdir() if p.name != "ck.json"]
        assert leftovers == []


class TestWorkerCrash:
    def test_killed_worker_is_absorbed_and_recorded(
        self, population, baseline_campaign, tmp_path
    ):
        runner = _runner(
            population,
            tmp_path / "ck.json",
            workers=2,
            worker_crash_units=[("P100", 2)],
        )
        campaign = runner.run()
        assert runner.health.worker_deaths == 1
        assert campaign_to_dict(campaign) == campaign_to_dict(
            baseline_campaign
        )

    def test_repeated_deaths_eventually_propagate(self, population, tmp_path):
        from repro.errors import WorkerLostError
        from repro.profiling import runner as runner_mod

        r = _runner(
            population,
            tmp_path / "ck.json",
            workers=2,
            max_shard_retries=1,
        )

        class AlwaysDies:
            workers = 2

            def map_unordered(self, fn, tasks):
                raise WorkerLostError("boom")
                yield  # pragma: no cover

            def close(self):
                pass

        original = runner_mod.WorkerPool
        runner_mod.WorkerPool = lambda *a, **k: AlwaysDies()
        try:
            with pytest.raises(WorkerLostError):
                r.run()
        finally:
            runner_mod.WorkerPool = original
        assert r.health.worker_deaths == 2  # initial + one retry round


class TestResumeAcrossWorkerCounts:
    @pytest.mark.parametrize("first,second", [(2, 4), (4, 1), (1, 2)])
    def test_interrupt_then_resume_with_other_count(
        self, population, baseline_campaign, tmp_path, first, second
    ):
        ck = tmp_path / "ck.json"
        with pytest.raises(CampaignInterrupted):
            _runner(population, ck, workers=first, max_units=5).run()
        resumed = _runner(population, ck, workers=second)
        campaign = resumed.run(resume=True)
        assert resumed.health.units_resumed == 5
        assert campaign_to_dict(campaign) == campaign_to_dict(
            baseline_campaign
        )

    def test_workers_not_part_of_checkpoint_identity(self, population,
                                                     tmp_path):
        ck = tmp_path / "ck.json"
        a = _runner(population, ck, workers=1)
        b = _runner(population, ck, workers=4, chunk_size=3)
        assert a._config_doc() == b._config_doc()


@pytest.fixture(scope="module")
def vector_baseline(population):
    """Single-process vector campaign: the reference for ``parallel``.

    ``backend="parallel"`` wraps a vector backend in every worker, so
    its contract is bit-identity with the *vector* campaign (scalar and
    vector raw times differ in the last ulp on a few rows, so the
    scalar ``baseline_campaign`` is the wrong reference here).
    """
    from repro.profiling import run_campaign

    return run_campaign(
        population, gpus=("V100", "P100"), ocs=OCS, n_settings=3, seed=7,
        backend="vector",
    )


class TestTransport:
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_parallel_backend_campaign_matches_vector(
        self, population, vector_baseline, tmp_path, transport
    ):
        """Fault-injected campaign over the in-batch parallel backend is
        bit-identical to the sequential vector campaign under either
        transport (fault draws happen in the parent, outside the
        transport, so the two compose without interaction)."""
        runner = _runner(
            population, tmp_path / "ck.json",
            backend="parallel", transport=transport,
        )
        campaign = runner.run()
        assert campaign_to_dict(campaign) == campaign_to_dict(
            vector_baseline
        )

    def test_transport_not_part_of_checkpoint_identity(self, population,
                                                       tmp_path):
        ck = tmp_path / "ck.json"
        a = _runner(population, ck, transport="shm")
        b = _runner(population, ck, transport="pickle")
        assert a._config_doc() == b._config_doc()

    @pytest.mark.parametrize("first,second", [("pickle", "shm"),
                                              ("shm", "pickle")])
    def test_interrupt_then_resume_with_other_transport(
        self, population, vector_baseline, tmp_path, first, second
    ):
        """A campaign checkpointed under one transport resumes under the
        other bit-identically: transport rides outside the checkpoint's
        config document."""
        ck = tmp_path / "ck.json"
        with pytest.raises(CampaignInterrupted):
            _runner(
                population, ck, backend="parallel", transport=first,
                max_units=5,
            ).run()
        resumed = _runner(
            population, ck, backend="parallel", transport=second
        )
        campaign = resumed.run(resume=True)
        assert resumed.health.units_resumed == 5
        assert campaign_to_dict(campaign) == campaign_to_dict(
            vector_baseline
        )

    def test_sharded_campaign_accepts_transport(
        self, population, baseline_campaign, tmp_path
    ):
        """Unit-sharded campaigns thread the transport to shard workers
        (it only matters when shards build parallel backends, but the
        plumbing must not perturb results)."""
        runner = _runner(
            population, tmp_path / "ck.json", workers=2,
            transport="pickle",
        )
        campaign = runner.run()
        assert campaign_to_dict(campaign) == campaign_to_dict(
            baseline_campaign
        )


class TestHealthMerge:
    def test_worker_deaths_round_trips(self):
        health = CampaignHealth(worker_deaths=3, timeouts=2)
        restored = CampaignHealth.from_dict(health.to_dict())
        assert restored.worker_deaths == 3
        assert "worker deaths absorbed: 3" in health.summary()

    def test_merge_accumulates_counters_and_quarantine(self):
        a = CampaignHealth(timeouts=1, backoff_s=0.5,
                           quarantined=[{"gpu": "V100"}])
        b = CampaignHealth(timeouts=2, worker_deaths=1, backoff_s=0.25,
                           quarantined=[{"gpu": "P100"}])
        a.merge_dict(b.to_dict())
        assert a.timeouts == 3
        assert a.worker_deaths == 1
        assert a.backoff_s == pytest.approx(0.75)
        assert [q["gpu"] for q in a.quarantined] == ["V100", "P100"]
