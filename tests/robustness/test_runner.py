"""CampaignRunner: determinism under faults, retries, quarantine, health."""

import pytest

from repro.errors import DatasetError
from repro.gpu.faults import FaultConfig
from repro.profiling import CampaignRunner, RetryPolicy, SimClock, run_campaign
from repro.profiling.storage import campaign_to_dict

from .conftest import OCS


class TestDeterminismUnderFaults:
    def test_faulty_run_equals_fault_free_run(
        self, population, baseline_campaign
    ):
        """The headline property: nonzero transient rates + retries
        reproduce the fault-free campaign bit for bit."""
        runner = CampaignRunner(
            population,
            gpus=("V100", "P100"),
            ocs=OCS,
            n_settings=3,
            seed=7,
            faults=FaultConfig.uniform(0.05),
        )
        campaign = runner.run()
        assert campaign_to_dict(campaign) == campaign_to_dict(
            baseline_campaign
        )
        # Faults actually happened and were absorbed.
        h = runner.health
        assert h.timeouts > 0
        assert h.transients > 0
        assert h.corrupt_rejected > 0
        assert h.call_retries > 0
        assert h.backoff_s > 0
        assert h.quarantined == []

    def test_run_campaign_wrapper_passes_faults(
        self, population, baseline_campaign
    ):
        campaign = run_campaign(
            population,
            gpus=("V100", "P100"),
            ocs=OCS,
            n_settings=3,
            seed=7,
            faults=FaultConfig.uniform(0.03),
        )
        assert campaign_to_dict(campaign) == campaign_to_dict(
            baseline_campaign
        )

    def test_zero_rates_no_injection_layer(self, population, baseline_campaign):
        campaign = run_campaign(
            population,
            gpus=("V100", "P100"),
            ocs=OCS,
            n_settings=3,
            seed=7,
            faults=FaultConfig(),
        )
        assert campaign_to_dict(campaign) == campaign_to_dict(
            baseline_campaign
        )


class TestQuarantine:
    def test_persistent_faults_quarantine_not_abort(self, population):
        """A run where every measurement fails completes anyway, with
        every (gpu, stencil, OC) point in the quarantine ledger."""
        runner = CampaignRunner(
            population,
            gpus=("V100",),
            ocs=OCS[:3],
            n_settings=2,
            seed=7,
            faults=FaultConfig(transient_rate=1.0),
            policy=RetryPolicy(max_call_retries=1, max_point_retries=1),
        )
        campaign = runner.run()
        assert len(runner.health.quarantined) == len(population) * 3
        for profile in campaign.profiles["V100"]:
            assert profile.oc_results == {}
            assert profile.measurements == []

    def test_device_loss_quarantine(self, population):
        runner = CampaignRunner(
            population[:2],
            gpus=("V100",),
            ocs=OCS[:2],
            n_settings=2,
            seed=7,
            faults=FaultConfig(device_lost_rate=1.0),
            policy=RetryPolicy(max_call_retries=1, max_point_retries=1),
        )
        runner.run()
        assert runner.health.device_lost > 0
        assert len(runner.health.quarantined) == 4
        for q in runner.health.quarantined:
            assert "lost" in q["reason"]

    def test_quarantined_campaign_summary(self, population):
        from repro.core.report import campaign_summary

        runner = CampaignRunner(
            population[:2],
            gpus=("V100",),
            ocs=OCS[:2],
            n_settings=2,
            seed=7,
            faults=FaultConfig(transient_rate=1.0),
            policy=RetryPolicy(max_call_retries=0, max_point_retries=0),
        )
        campaign = runner.run()
        text = campaign_summary(campaign)
        assert "crashed" in text

    def test_classification_dataset_rejects_all_quarantined(self, population):
        from repro.profiling import build_classification_dataset
        from repro.profiling.merge import OCGrouping

        runner = CampaignRunner(
            population[:2],
            gpus=("V100",),
            ocs=OCS[:2],
            n_settings=2,
            seed=7,
            faults=FaultConfig(transient_rate=1.0),
            policy=RetryPolicy(max_call_retries=0, max_point_retries=0),
        )
        campaign = runner.run()
        grouping = OCGrouping(
            groups=[[oc.name for oc in OCS[:2]]],
            representatives=[OCS[0].name],
            class_of={oc.name: 0 for oc in OCS[:2]},
        )
        with pytest.raises(DatasetError, match="no stencil has a valid OC"):
            build_classification_dataset(campaign, grouping, "V100")


class TestGracefulDegradation:
    def test_skipped_stencils_recorded(self, baseline_campaign):
        from repro.profiling import build_classification_dataset, merge_ocs

        from .conftest import copy_campaign

        campaign = copy_campaign(baseline_campaign)
        # Simulate one quarantined unit: stencil 1 crashed everywhere.
        campaign.profiles["V100"][1].oc_results.clear()
        campaign.profiles["V100"][1].measurements.clear()
        grouping = merge_ocs(campaign, n_classes=3)
        ds = build_classification_dataset(campaign, grouping, "V100")
        assert ds.skipped_stencils == [1]
        assert list(ds.stencil_ids) == [0, 2, 3]
        assert ds.n_samples == len(campaign.stencils) - 1

    def test_regression_dataset_survives_missing_unit(self, baseline_campaign):
        from repro.profiling import build_regression_dataset

        from .conftest import copy_campaign

        campaign = copy_campaign(baseline_campaign)
        campaign.profiles["V100"][1].oc_results.clear()
        campaign.profiles["V100"][1].measurements.clear()
        ds = build_regression_dataset(campaign)
        assert ds.n_samples > 0
        assert 1 not in set(
            sid for sid, g in zip(ds.stencil_ids, ds.gpus) if g == "V100"
        )


class TestUnknownGPU:
    def test_profile_lists_available(self, baseline_campaign):
        with pytest.raises(DatasetError, match="P100.*V100|V100.*P100"):
            baseline_campaign.profile("H100", 0)

    def test_measurements_lists_available(self, baseline_campaign):
        with pytest.raises(DatasetError, match="H100"):
            baseline_campaign.measurements("H100")

    def test_best_oc_labels(self, baseline_campaign):
        with pytest.raises(DatasetError):
            baseline_campaign.best_oc_labels("K80")


class TestClockAndPolicy:
    def test_sim_clock_advances(self):
        clock = SimClock()
        clock.sleep(0.5)
        clock.sleep(1.0)
        assert clock.now_s == pytest.approx(1.5)

    def test_backoff_is_simulated_not_wall_clock(self, population):
        import time

        start = time.monotonic()
        runner = CampaignRunner(
            population[:1],
            gpus=("V100",),
            ocs=OCS[:2],
            n_settings=2,
            seed=7,
            faults=FaultConfig(transient_rate=1.0),
            policy=RetryPolicy(max_call_retries=2, max_point_retries=1),
        )
        runner.run()
        assert runner.clock.now_s > 0
        # Generous bound: simulated seconds must not consume wall seconds.
        assert time.monotonic() - start < runner.clock.now_s + 30

    def test_health_summary_mentions_everything(self, population):
        runner = CampaignRunner(
            population[:2],
            gpus=("V100",),
            ocs=OCS[:3],
            n_settings=2,
            seed=7,
            faults=FaultConfig.uniform(0.1),
        )
        runner.run()
        text = runner.health.summary()
        for needle in ("units completed", "timeouts", "corrupted",
                       "retries", "quarantined", "backoff"):
            assert needle in text


class TestValidation:
    def test_empty_population(self):
        with pytest.raises(DatasetError, match="empty"):
            CampaignRunner([])

    def test_mixed_ndims(self, population):
        from repro.stencil import star

        with pytest.raises(DatasetError, match="mixed"):
            CampaignRunner(list(population) + [star(3, 1)])
