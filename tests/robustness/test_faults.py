"""Unit tests for the deterministic fault injector."""

import math

import numpy as np
import pytest

from repro.errors import (
    DeviceLostError,
    MeasurementTimeout,
    ReproError,
    TransientError,
    TransientMeasurementError,
)
from repro.gpu import GPUSimulator
from repro.gpu.faults import FaultConfig, FaultInjector, is_valid_time
from repro.optimizations.combos import ALL_OCS
from repro.optimizations.params import sample_setting
from repro.stencil import star


def _sample_calls(n=40, seed=0):
    """(stencil, oc, setting) triples covering several OCs."""
    rng = np.random.default_rng(seed)
    stencil = star(2, 1)
    out = []
    for i in range(n):
        oc = ALL_OCS[i % len(ALL_OCS)]
        out.append((stencil, oc, sample_setting(oc, 2, rng)))
    return out


def _valid_call(seed=0):
    """One (stencil, oc, setting) that launches cleanly on V100."""
    sim = GPUSimulator("V100")
    rng = np.random.default_rng(seed)
    stencil = star(2, 1)
    oc = ALL_OCS[0]
    for _ in range(64):
        setting = sample_setting(oc, 2, rng)
        try:
            sim.time(stencil, oc, setting)
        except ReproError:
            continue
        return stencil, oc, setting
    raise AssertionError("no launchable setting found")


class TestFaultConfig:
    def test_defaults_disabled(self):
        assert not FaultConfig().enabled

    def test_uniform_enabled(self):
        cfg = FaultConfig.uniform(0.1)
        assert cfg.enabled
        assert cfg.timeout_rate == cfg.transient_rate == cfg.corrupt_rate == 0.1
        assert cfg.device_lost_rate == pytest.approx(0.001)

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultConfig(timeout_rate=1.5)
        with pytest.raises(ValueError):
            FaultConfig(corrupt_rate=-0.1)

    def test_dict_round_trip(self):
        cfg = FaultConfig(0.1, 0.2, 0.05, 0.3)
        assert FaultConfig.from_dict(cfg.to_dict()) == cfg

    def test_error_hierarchy(self):
        for exc in (MeasurementTimeout, TransientMeasurementError,
                    DeviceLostError):
            assert issubclass(exc, TransientError)
            assert issubclass(exc, ReproError)


class TestZeroRatePassThrough:
    def test_identical_times(self):
        sim = GPUSimulator("V100")
        inj = FaultInjector(sim, FaultConfig(), seed=1)
        for stencil, oc, setting in _sample_calls(20):
            try:
                expected = sim.time(stencil, oc, setting)
            except ReproError:
                continue
            assert inj.time(stencil, oc, setting) == expected


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        cfg = FaultConfig.uniform(0.2)

        def outcomes(seed):
            inj = FaultInjector(GPUSimulator("V100"), cfg, seed=seed)
            inj.begin_unit("u")
            out = []
            for stencil, oc, setting in _sample_calls(30):
                try:
                    out.append(("ok", inj.time(stencil, oc, setting)))
                except ReproError as e:
                    out.append((type(e).__name__, None))
            return out

        assert outcomes(5) == outcomes(5)

    def test_different_seeds_differ(self):
        cfg = FaultConfig.uniform(0.2)

        def kinds(seed):
            inj = FaultInjector(GPUSimulator("V100"), cfg, seed=seed)
            inj.begin_unit("u")
            out = []
            for stencil, oc, setting in _sample_calls(40):
                try:
                    inj.time(stencil, oc, setting)
                    out.append("ok")
                except ReproError as e:
                    out.append(type(e).__name__)
            return out

        assert kinds(1) != kinds(2)

    def test_attempt_counter_advances(self):
        """Retrying the same call eventually yields the true timing."""
        sim = GPUSimulator("V100")
        cfg = FaultConfig(timeout_rate=0.5)
        inj = FaultInjector(sim, cfg, seed=3)
        inj.begin_unit("u")
        stencil, oc, setting = _valid_call()
        expected = sim.time(stencil, oc, setting)
        for _ in range(64):
            try:
                assert inj.time(stencil, oc, setting) == expected
                return
            except MeasurementTimeout:
                continue
        pytest.fail("fault never cleared over 64 attempts")

    def test_begin_unit_rescopes_draws(self):
        """The same call faults independently in different units."""
        cfg = FaultConfig(transient_rate=0.5)
        stencil, oc, setting = _valid_call()

        def first_outcome(unit):
            inj = FaultInjector(GPUSimulator("V100"), cfg, seed=9)
            inj.begin_unit(unit)
            try:
                inj.time(stencil, oc, setting)
                return "ok"
            except TransientMeasurementError:
                return "fault"

        outcomes = {first_outcome(u) for u in range(16)}
        assert outcomes == {"ok", "fault"}


class TestCorruption:
    def test_corrupted_timings_are_detectable(self):
        cfg = FaultConfig(corrupt_rate=1.0)
        inj = FaultInjector(GPUSimulator("V100"), cfg, seed=0)
        inj.begin_unit("u")
        seen = 0
        for stencil, oc, setting in _sample_calls(30):
            try:
                t = inj.time(stencil, oc, setting)
            except ReproError:
                continue
            assert not is_valid_time(t)
            seen += 1
        assert seen > 0

    def test_is_valid_time(self):
        assert is_valid_time(1.5)
        for bad in (0.0, -1.0, math.nan, math.inf):
            assert not is_valid_time(bad)
