"""The crash-only path: an OC whose every sampled setting crashes.

Mirrors the paper's "there are some cases where OC crashes under certain
stencils": such an OC yields no OCResult at all, and everything downstream
must keep working off the reduced data.
"""

import pytest

from repro.errors import DatasetError, KernelLaunchError
from repro.gpu import GPUSimulator
from repro.profiling import (
    RandomSearch,
    build_classification_dataset,
    build_regression_dataset,
    merge_ocs,
)
from repro.stencil import star

from .conftest import OCS


class _AlwaysCrashSim:
    """Simulator facade on which no configuration can ever launch."""

    def __init__(self, gpu="V100"):
        self._inner = GPUSimulator(gpu)

    @property
    def spec(self):
        return self._inner.spec

    @property
    def sigma(self):
        return self._inner.sigma

    def time(self, stencil, oc, setting, grid=None):
        raise KernelLaunchError("always crashes")


class TestCrashOnlyOC:
    def test_tune_oc_returns_none(self):
        search = RandomSearch(_AlwaysCrashSim(), n_settings=3, seed=0)
        result, measurements = search.tune_oc(star(2, 1), 0, OCS[0])
        assert result is None
        assert measurements == []

    def test_profile_stencil_is_empty(self):
        search = RandomSearch(_AlwaysCrashSim(), n_settings=3, seed=0)
        profile = search.profile_stencil(star(2, 1), 0, OCS)
        assert profile.oc_results == {}
        assert profile.measurements == []
        with pytest.raises(DatasetError, match="no valid OC"):
            profile.best_oc


class TestDownstreamWithCrashedStencil:
    @pytest.fixture()
    def campaign_with_crashed_stencil(self, baseline_campaign):
        from .conftest import copy_campaign

        campaign = copy_campaign(baseline_campaign)
        for gpu in campaign.gpus:
            campaign.profiles[gpu][2].oc_results.clear()
            campaign.profiles[gpu][2].measurements.clear()
        return campaign

    def test_merge_still_works(self, campaign_with_crashed_stencil):
        grouping = merge_ocs(campaign_with_crashed_stencil, n_classes=3)
        assert grouping.n_classes == 3

    def test_classification_skips_explicitly(
        self, campaign_with_crashed_stencil
    ):
        campaign = campaign_with_crashed_stencil
        grouping = merge_ocs(campaign, n_classes=3)
        for gpu in campaign.gpus:
            ds = build_classification_dataset(campaign, grouping, gpu)
            assert ds.skipped_stencils == [2]
            assert 2 not in set(ds.stencil_ids)
            assert ds.n_samples == len(campaign.stencils) - 1

    def test_regression_still_works(self, campaign_with_crashed_stencil):
        ds = build_regression_dataset(campaign_with_crashed_stencil)
        assert ds.n_samples > 0
        assert 2 not in set(ds.stencil_ids)
