"""Checkpointing and kill--resume equivalence."""

import json

import pytest

from repro.errors import CampaignInterrupted, DatasetError
from repro.gpu.faults import FaultConfig
from repro.profiling import CampaignRunner
from repro.profiling.storage import campaign_to_dict

from .conftest import OCS


def _runner(population, ck, **overrides):
    kwargs = dict(
        gpus=("V100", "P100"),
        ocs=OCS,
        n_settings=3,
        seed=7,
        faults=FaultConfig.uniform(0.02),
        checkpoint_path=ck,
        checkpoint_every=2,
    )
    kwargs.update(overrides)
    return CampaignRunner(population, **kwargs)


class TestKillResume:
    def test_interrupt_then_resume_is_equivalent(
        self, population, baseline_campaign, tmp_path
    ):
        """Interrupt mid-run via the unit cap, resume from the checkpoint,
        and end with a campaign that serializes identically to an
        uninterrupted (and to a fault-free) run."""
        ck = tmp_path / "ck.json"
        first = _runner(population, ck, max_units=3)
        with pytest.raises(CampaignInterrupted):
            first.run()
        assert ck.exists()

        second = _runner(population, ck)
        campaign = second.run(resume=True)
        assert second.health.units_resumed == 3
        assert campaign_to_dict(campaign) == campaign_to_dict(
            baseline_campaign
        )

    def test_multiple_interruptions(self, population, baseline_campaign,
                                    tmp_path):
        """A campaign killed repeatedly still converges to the same bits."""
        ck = tmp_path / "ck.json"
        runs = 0
        while True:
            runner = _runner(population, ck, max_units=2)
            try:
                campaign = runner.run(resume=True)
                break
            except CampaignInterrupted:
                runs += 1
                assert runs < 20
        assert runs == 3  # 8 units / 2 per run, last run finishes 2 + exits
        assert campaign_to_dict(campaign) == campaign_to_dict(
            baseline_campaign
        )

    def test_resume_without_checkpoint_starts_fresh(
        self, population, baseline_campaign, tmp_path
    ):
        runner = _runner(population, tmp_path / "missing.json")
        campaign = runner.run(resume=True)
        assert runner.health.units_resumed == 0
        assert campaign_to_dict(campaign) == campaign_to_dict(
            baseline_campaign
        )

    def test_completed_checkpoint_resumes_instantly(self, population,
                                                    tmp_path):
        ck = tmp_path / "ck.json"
        _runner(population, ck).run()
        again = _runner(population, ck)
        campaign = again.run(resume=True)
        assert again.health.units_resumed == 2 * len(population)
        assert len(campaign.profiles["V100"]) == len(population)


class TestCheckpointHygiene:
    def test_no_temp_files_left(self, population, tmp_path):
        ck = tmp_path / "ck.json"
        _runner(population, ck).run()
        leftovers = [p for p in tmp_path.iterdir() if p.name != "ck.json"]
        assert leftovers == []

    def test_checkpoint_is_valid_json_with_health(self, population, tmp_path):
        ck = tmp_path / "ck.json"
        runner = _runner(population, ck, max_units=3)
        with pytest.raises(CampaignInterrupted):
            runner.run()
        doc = json.loads(ck.read_text())
        assert doc["kind"] == "campaign-checkpoint"
        assert doc["config"]["seed"] == 7
        assert sum(len(rows) for rows in doc["completed"].values()) == 3
        assert "call_retries" in doc["health"]

    def test_mismatched_config_rejected(self, population, tmp_path):
        ck = tmp_path / "ck.json"
        runner = _runner(population, ck, max_units=3)
        with pytest.raises(CampaignInterrupted):
            runner.run()
        for overrides, field in (
            (dict(seed=8), "seed"),
            (dict(n_settings=4), "n_settings"),
            (dict(gpus=("V100",)), "gpus"),
            (dict(faults=FaultConfig.uniform(0.5)), "faults"),
        ):
            other = _runner(population, ck, **overrides)
            with pytest.raises(DatasetError, match=field):
                other.run(resume=True)

    def test_wrong_kind_rejected(self, population, tmp_path):
        ck = tmp_path / "ck.json"
        ck.write_text(json.dumps({"format": 1, "kind": "something-else"}))
        with pytest.raises(DatasetError, match="kind"):
            _runner(population, ck).run(resume=True)

    def test_newer_checkpoint_format_rejected(self, population, tmp_path):
        ck = tmp_path / "ck.json"
        ck.write_text(json.dumps({"format": 99, "kind": "campaign-checkpoint"}))
        with pytest.raises(DatasetError, match="format_version 99"):
            _runner(population, ck).run(resume=True)
