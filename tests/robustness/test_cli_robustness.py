"""CLI surface of the fault-tolerant campaign runner."""

import json

from repro.cli import build_parser, main


class TestParser:
    def test_profile_robustness_flags(self):
        args = build_parser().parse_args(
            [
                "profile", "--ndim", "2", "--count", "3", "-o", "c.json",
                "--checkpoint", "ck.json", "--resume",
                "--checkpoint-every", "4", "--fault-rate", "0.05",
                "--device-lost-rate", "0.001",
            ]
        )
        assert args.checkpoint == "ck.json"
        assert args.resume is True
        assert args.checkpoint_every == 4
        assert args.fault_rate == 0.05
        assert args.device_lost_rate == 0.001

    def test_defaults_are_fault_free(self):
        args = build_parser().parse_args(
            ["profile", "--ndim", "2", "--count", "3", "-o", "c.json"]
        )
        assert args.fault_rate == 0.0
        assert args.checkpoint is None
        assert args.resume is False


class TestProfileCommand:
    def test_fault_injection_and_health_report(self, tmp_path, capsys):
        out_path = tmp_path / "c.json"
        rc = main(
            [
                "profile", "--ndim", "2", "--count", "3", "--gpus", "V100",
                "--n-settings", "2", "-o", str(out_path), "--seed", "4",
                "--fault-rate", "0.02",
                "--checkpoint", str(tmp_path / "ck.json"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign health:" in out
        assert "transient faults absorbed" in out
        assert out_path.exists()
        assert (tmp_path / "ck.json").exists()

    def test_resume_recovers_units(self, tmp_path, capsys):
        ck = tmp_path / "ck.json"
        common = [
            "profile", "--ndim", "2", "--count", "3", "--gpus", "V100",
            "--n-settings", "2", "-o", str(tmp_path / "c.json"),
            "--seed", "4", "--checkpoint", str(ck),
        ]
        assert main(common) == 0
        first = capsys.readouterr().out
        assert "recovered from checkpoint: 0" in first

        assert main(common + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "recovered from checkpoint: 3" in second

    def test_faulty_and_clean_runs_agree(self, tmp_path, capsys):
        clean, faulty = tmp_path / "clean.json", tmp_path / "faulty.json"
        common = [
            "profile", "--ndim", "2", "--count", "3", "--gpus", "V100",
            "--n-settings", "2", "--seed", "4",
        ]
        assert main(common + ["-o", str(clean)]) == 0
        assert main(common + ["-o", str(faulty), "--fault-rate", "0.02"]) == 0
        capsys.readouterr()
        assert json.loads(clean.read_text()) == json.loads(faulty.read_text())
