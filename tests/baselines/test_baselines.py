"""Tests for the Artemis/AN5D baselines and the oracle."""


from repro.baselines import AN5DBaseline, ArtemisBaseline, OracleBaseline
from repro.optimizations import Opt
from repro.stencil import box, get, star


class TestAN5D:
    def test_prefers_full_strategy_when_valid(self):
        oc, setting, t = AN5DBaseline("V100", 6, 0).tune(get("star2d1r"))
        assert Opt.ST in oc.opts
        assert t > 0

    def test_falls_back_when_tb_invalid(self):
        # 3-D order-4 box: ST_RT_TB plane queues blow shared memory on
        # P100 (48 KB/block); the ladder must fall back.
        oc, _, t = AN5DBaseline("P100", 6, 0).tune(box(3, 4))
        assert Opt.ST in oc.opts
        assert t > 0

    def test_deterministic(self):
        a = AN5DBaseline("V100", 5, 3).tune(get("box2d2r"))
        b = AN5DBaseline("V100", 5, 3).tune(get("box2d2r"))
        assert a[2] == b[2]


class TestArtemis:
    def test_returns_valid_config(self):
        oc, setting, t = ArtemisBaseline("V100", 5, 0).tune(get("star2d2r"))
        assert t > 0

    def test_stage2_never_worse_than_stage1(self):
        base = ArtemisBaseline("V100", 5, 0)
        s = get("box2d1r")
        _, _, final = base.tune(s)
        # Stage-1 best is one of the skeletons with the same search.
        from repro.optimizations import OC

        skeleton_best = min(
            r.best_time_ms
            for name in ("naive", "ST", "TB", "ST_TB")
            for r, _ in [base.search.tune_oc(s, -1, OC.parse(name))]
            if r is not None
        )
        assert final <= skeleton_best

    def test_handles_crashy_stencil(self):
        oc, _, t = ArtemisBaseline("V100", 5, 0).tune(box(3, 4))
        assert t > 0


class TestOracle:
    def test_oracle_at_least_as_good_as_baselines(self):
        s = get("star3d2r")
        _, _, oracle_t = OracleBaseline("V100", 5, 1).tune(s)
        _, _, an5d_t = AN5DBaseline("V100", 5, 1).tune(s)
        _, _, artemis_t = ArtemisBaseline("V100", 5, 1).tune(s)
        assert oracle_t <= an5d_t + 1e-12
        assert oracle_t <= artemis_t + 1e-12

    def test_oracle_returns_best_over_ocs(self):
        s = star(2, 1)
        oc, _, t = OracleBaseline("V100", 4, 0).tune(s)
        assert t > 0
        assert oc.name != ""
