"""Tests for Table I optimizations, constraints and OC enumeration."""

import pytest

from repro.errors import ConstraintViolation
from repro.optimizations import (
    ALL_OCS,
    NAIVE,
    OC,
    OC_BY_NAME,
    TABLE_I,
    Opt,
    constraint_violations,
    enumerate_ocs,
)


class TestTableI:
    def test_six_optimizations(self):
        assert len(TABLE_I) == 6
        assert [row.opt.value for row in TABLE_I] == ["ST", "BM", "CM", "RT", "PR", "TB"]

    def test_numbers_sequential(self):
        assert [row.number for row in TABLE_I] == [1, 2, 3, 4, 5, 6]


class TestConstraints:
    def test_bm_cm_exclusive(self):
        assert constraint_violations(frozenset({Opt.BM, Opt.CM}))

    def test_rt_requires_st(self):
        assert constraint_violations(frozenset({Opt.RT}))
        assert not constraint_violations(frozenset({Opt.ST, Opt.RT}))

    def test_pr_requires_st(self):
        assert constraint_violations(frozenset({Opt.PR}))
        assert not constraint_violations(frozenset({Opt.ST, Opt.PR}))

    def test_tb_standalone_ok(self):
        assert not constraint_violations(frozenset({Opt.TB}))

    def test_empty_ok(self):
        assert not constraint_violations(frozenset())

    def test_multiple_violations_reported(self):
        problems = constraint_violations(frozenset({Opt.BM, Opt.CM, Opt.RT}))
        assert len(problems) == 2


class TestOC:
    def test_of_strings(self):
        oc = OC.of("ST", "RT")
        assert Opt.ST in oc.opts and Opt.RT in oc.opts

    def test_invalid_raises(self):
        with pytest.raises(ConstraintViolation):
            OC.of("RT")
        with pytest.raises(ConstraintViolation):
            OC.of("BM", "CM")

    def test_canonical_name_order(self):
        assert OC.of("TB", "RT", "ST").name == "ST_RT_TB"

    def test_naive_name(self):
        assert NAIVE.name == "naive"
        assert len(NAIVE) == 0

    def test_parse_round_trip(self):
        for oc in ALL_OCS:
            assert OC.parse(oc.name) == oc

    def test_contains(self):
        oc = OC.of("ST", "PR")
        assert "ST" in oc and Opt.PR in oc and "TB" not in oc

    def test_sortable_size_major(self):
        assert sorted(ALL_OCS)[0] == NAIVE


class TestEnumeration:
    def test_thirty_valid_ocs(self):
        assert len(ALL_OCS) == 30

    def test_enumeration_deterministic(self):
        assert tuple(enumerate_ocs()) == ALL_OCS

    def test_no_duplicates(self):
        assert len({oc.name for oc in ALL_OCS}) == 30

    def test_by_name_lookup(self):
        assert OC_BY_NAME["ST_BM_RT_PR_TB"] in ALL_OCS

    def test_all_satisfy_constraints(self):
        for oc in ALL_OCS:
            assert not constraint_violations(oc.opts)

    def test_expected_members(self):
        names = {oc.name for oc in ALL_OCS}
        # Spot-check combinations mentioned in the paper's figures.
        for expected in ("naive", "TB", "ST", "ST_BM", "ST_CM", "ST_RT_PR_TB"):
            assert expected in names
        # And impossible ones are absent.
        for absent in ("RT", "PR", "BM_CM", "RT_TB"):
            assert absent not in names
