"""Tests for the kernel resource/traffic model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.errors import KernelLaunchError, OptimizationError
from repro.optimizations import (
    OC,
    ParamSetting,
    TIME_STEPS,
    build_profile,
    default_grid,
    sample_setting,
)
from repro.optimizations.kernelmodel import WORD
from repro.stencil import box, generate_stencil, star


def profile(stencil, oc, **params):
    return build_profile(stencil, OC.parse(oc), ParamSetting(**params))


class TestGeometry:
    def test_default_grids(self):
        assert default_grid(2) == (8192, 8192)
        assert default_grid(3) == (512, 512, 512)

    def test_naive_block_and_grid(self):
        p = profile(star(2, 1), "naive", block_x=32, block_y=4)
        assert p.threads_per_block == 128
        assert p.n_blocks == (8192 // 32) * (8192 // 4)

    def test_merging_shrinks_grid(self):
        base = profile(star(2, 1), "naive")
        merged = profile(star(2, 1), "BM", merge_factor=4, merge_dim=2)
        assert merged.n_blocks == base.n_blocks // 4

    def test_streaming_block_is_planar(self):
        p = profile(star(3, 1), "ST", block_x=64, block_y=8, stream_dim=3)
        assert p.threads_per_block == 64 * 8
        assert p.n_blocks == (512 // 64) * (512 // 8)  # stream_tiles=1

    def test_stream_tiles_multiply_blocks(self):
        a = profile(star(3, 1), "ST", stream_dim=3, stream_tiles=1)
        b = profile(star(3, 1), "ST", stream_dim=3, stream_tiles=4)
        assert b.n_blocks == 4 * a.n_blocks

    def test_stream_iters(self):
        p = profile(
            star(3, 1), "ST", stream_dim=3, stream_tiles=4, stream_unroll=2
        )
        assert p.stream_iters == math.ceil((512 / 4) / 2)

    def test_grid_rank_mismatch_raises(self):
        with pytest.raises(OptimizationError):
            build_profile(star(2, 1), OC.parse("naive"), ParamSetting(), grid=(64,))

    def test_custom_grid(self):
        p = build_profile(
            star(2, 1), OC.parse("naive"), ParamSetting(), grid=(256, 256)
        )
        assert p.points == 256 * 256


class TestResources:
    def test_merging_raises_registers(self):
        base = profile(star(2, 2), "naive")
        merged = profile(star(2, 2), "CM", merge_factor=8, merge_dim=2)
        assert merged.regs_per_thread > base.regs_per_thread

    def test_bm_costs_more_registers_than_cm(self):
        bm = profile(star(2, 2), "BM", merge_factor=4, merge_dim=2)
        cm = profile(star(2, 2), "CM", merge_factor=4, merge_dim=2)
        assert bm.regs_per_thread > cm.regs_per_thread

    def test_retiming_cuts_stream_registers_high_order(self):
        kw = dict(stream_dim=3, stream_unroll=4)
        no_rt = profile(star(3, 4), "ST", **kw)
        rt = profile(star(3, 4), "ST_RT", **kw)
        assert rt.regs_per_thread < no_rt.regs_per_thread

    def test_prefetch_adds_registers(self):
        kw = dict(stream_dim=3, use_smem=1)
        assert (
            profile(star(3, 2), "ST_PR", **kw).regs_per_thread
            > profile(star(3, 2), "ST", **kw).regs_per_thread
        )

    def test_spill_recorded_beyond_255(self):
        p = profile(box(3, 4), "CM", merge_factor=8, merge_dim=2, block_y=1)
        assert p.regs_per_thread <= 255
        if p.spilled_regs:
            assert p.spilled_regs > 0

    def test_smem_zero_without_flag(self):
        assert profile(star(2, 1), "naive").smem_per_block == 0

    def test_smem_tile_size_2d(self):
        p = profile(star(2, 1), "naive", use_smem=1, block_x=32, block_y=4)
        assert p.smem_per_block == (32 + 2) * (4 + 2) * WORD

    def test_tb_forces_smem(self):
        p = profile(star(2, 1), "TB", temporal_steps=2, block_y=16)
        assert p.smem_per_block > 0

    def test_streaming_smem_planes(self):
        p = profile(
            star(3, 1), "ST", stream_dim=3, use_smem=1, block_x=32, block_y=8
        )
        assert p.smem_per_block == (32 + 2) * (8 + 2) * 3 * WORD


class TestTrafficAndWork:
    def test_flops_match_stencil(self):
        s = star(2, 1)
        p = profile(s, "naive")
        assert p.flops == pytest.approx(s.flops_per_point() * p.points)

    def test_smem_halo_reduces_reads_vs_worstcase(self):
        naive = profile(star(3, 2), "naive")
        tiled = profile(star(3, 2), "naive", use_smem=1, block_y=16, block_z=8)
        worst_naive = naive.read_bytes_base * naive.read_amplification
        assert tiled.read_bytes_base < worst_naive
        assert tiled.read_amplification == 1.0

    def test_temporal_blocking_amortizes_launches(self):
        p = profile(star(2, 1), "TB", temporal_steps=4, block_x=64, block_y=16)
        assert p.launches == TIME_STEPS // 4
        assert p.temporal_steps == 4

    def test_temporal_redundancy_grows_flops(self):
        single = profile(star(2, 1), "naive", use_smem=1)
        fused = profile(star(2, 1), "TB", temporal_steps=2)
        assert fused.flops > 2 * single.flops  # t sweeps + halo redundancy

    def test_write_bytes_per_launch_constant(self):
        p1 = profile(star(2, 1), "naive")
        p2 = profile(star(2, 1), "TB", temporal_steps=2)
        assert p1.write_bytes == p2.write_bytes

    def test_reuse_window_smaller_with_streaming(self):
        naive = profile(star(3, 2), "naive")
        streamed = profile(star(3, 2), "ST", stream_dim=3)
        assert streamed.reuse_window_bytes < naive.reuse_window_bytes

    def test_scattered_flag(self):
        assert profile(star(2, 1), "naive").scattered
        assert not profile(star(2, 1), "naive", use_smem=1).scattered


class TestCoalescing:
    def test_full_for_wide_blocks(self):
        assert profile(star(2, 1), "naive", block_x=32).coalescing == 1.0

    def test_narrow_block_penalty(self):
        assert profile(star(2, 1), "naive", block_x=16).coalescing == 0.5

    def test_bm_x_merge_penalty(self):
        p = profile(star(2, 1), "BM", merge_factor=4, merge_dim=1)
        assert p.coalescing == pytest.approx(0.25)

    def test_cm_x_merge_no_penalty(self):
        p = profile(star(2, 1), "CM", merge_factor=4, merge_dim=1)
        assert p.coalescing == 1.0

    def test_stream_x_penalty(self):
        p = profile(star(3, 1), "ST", stream_dim=1)
        assert p.coalescing == pytest.approx(0.25)

    def test_floor(self):
        p = profile(star(3, 1), "ST_BM", stream_dim=1, merge_factor=8, merge_dim=1)
        assert p.coalescing >= 0.15


class TestValidity:
    def test_temporal_halo_consumes_tile(self):
        with pytest.raises(KernelLaunchError):
            profile(star(3, 3), "TB", temporal_steps=2, block_z=2)

    def test_merge_dim_beyond_ndim(self):
        with pytest.raises(OptimizationError):
            profile(star(2, 1), "BM", merge_factor=2, merge_dim=3)

    def test_stream_dim_beyond_ndim(self):
        with pytest.raises(OptimizationError):
            profile(star(2, 1), "ST", stream_dim=3)


class TestPropertyInvariants:
    @settings(max_examples=60, deadline=None)
    @given(
        ndim=st.sampled_from([2, 3]),
        order=st.integers(1, 4),
        seed=st.integers(0, 50_000),
        oc_name=st.sampled_from(
            ["naive", "ST", "BM", "CM", "ST_RT", "ST_PR", "ST_CM_RT_PR_TB"]
        ),
    )
    def test_profile_physical_sanity(self, ndim, order, seed, oc_name):
        rng = np.random.default_rng(seed)
        s = generate_stencil(ndim, order, rng)
        oc = OC.parse(oc_name)
        setting = sample_setting(oc, ndim, rng)
        try:
            p = build_profile(s, oc, setting)
        except KernelLaunchError:
            return
        assert p.threads_per_block >= 1
        assert p.n_blocks >= 1
        assert p.regs_per_thread >= 18
        assert p.smem_per_block >= 0
        assert p.flops >= s.flops_per_point() * p.points
        assert p.read_bytes_base >= WORD * p.points * 0.99
        assert p.read_amplification >= 1.0
        assert 0.15 <= p.coalescing <= 1.0
        assert p.launches * p.temporal_steps == TIME_STEPS
