"""Tests for parameter spaces, settings and encodings."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OptimizationError
from repro.optimizations import (
    N_PARAM_FEATURES,
    OC,
    PARAM_NAMES,
    PARAM_SPECS,
    ParamKind,
    ParamSetting,
    default_setting,
    param_space_size,
    relevant_params,
    sample_setting,
    sample_settings,
)


class TestSpecs:
    def test_three_kinds_present(self):
        kinds = {s.kind for s in PARAM_SPECS}
        assert kinds == {ParamKind.POW2, ParamKind.BOOL, ParamKind.ENUM}

    def test_pow2_choices_are_powers(self):
        for s in PARAM_SPECS:
            if s.kind is ParamKind.POW2:
                for c in s.choices:
                    assert c & (c - 1) == 0

    def test_enum_starts_at_one(self):
        for s in PARAM_SPECS:
            if s.kind is ParamKind.ENUM:
                assert min(s.choices) == 1

    def test_encode_log2(self):
        spec = next(s for s in PARAM_SPECS if s.name == "block_x")
        assert spec.encode(32) == 5.0

    def test_encode_bool_identity(self):
        spec = next(s for s in PARAM_SPECS if s.name == "use_smem")
        assert spec.encode(1) == 1.0


class TestParamSetting:
    def test_defaults(self):
        s = default_setting()
        assert s["block_x"] == 32 and s["merge_factor"] == 1

    def test_rejects_unknown(self):
        with pytest.raises(OptimizationError):
            ParamSetting(warp_size=32)

    def test_rejects_off_menu_value(self):
        with pytest.raises(OptimizationError):
            ParamSetting(block_x=48)

    def test_accepts_default_even_if_not_choice(self):
        # merge_factor's default (1) is not in its choices (2, 4, 8).
        assert ParamSetting(merge_factor=1)["merge_factor"] == 1

    def test_replace(self):
        a = default_setting()
        b = a.replace(block_y=8)
        assert b["block_y"] == 8 and a["block_y"] == 4

    def test_hash_eq(self):
        assert ParamSetting(block_x=64) == ParamSetting(block_x=64)
        assert len({ParamSetting(block_x=64), ParamSetting(block_x=64)}) == 1

    def test_as_tuple_order(self):
        s = default_setting()
        assert len(s.as_tuple()) == len(PARAM_NAMES)

    def test_encode_width_and_log2(self):
        v = ParamSetting(block_x=128, use_smem=1, stream_dim=2).encode()
        assert v.shape == (N_PARAM_FEATURES,)
        assert v[PARAM_NAMES.index("block_x")] == 7.0
        assert v[PARAM_NAMES.index("use_smem")] == 1.0
        assert v[PARAM_NAMES.index("stream_dim")] == 2.0

    def test_mapping_protocol(self):
        s = default_setting()
        assert set(s) == set(PARAM_NAMES)
        assert len(s) == len(PARAM_NAMES)


class TestRelevance:
    def test_naive_2d(self):
        names = relevant_params(OC.parse("naive"), 2)
        assert "merge_factor" not in names
        assert "stream_dim" not in names
        assert "use_smem" in names

    def test_streaming_drops_block_z(self):
        names = relevant_params(OC.parse("ST"), 3)
        assert "block_z" not in names
        assert {"stream_dim", "stream_unroll", "stream_tiles"} <= set(names)

    def test_merging_adds_merge_params(self):
        names = relevant_params(OC.parse("BM"), 2)
        assert {"merge_factor", "merge_dim"} <= set(names)

    def test_tb_adds_temporal(self):
        assert "temporal_steps" in relevant_params(OC.parse("TB"), 2)

    def test_space_size_positive(self):
        for name in ("naive", "ST", "ST_BM_RT_PR_TB"):
            assert param_space_size(OC.parse(name), 3) >= 2


class TestSampling:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), ndim=st.sampled_from([2, 3]))
    def test_samples_respect_relevance(self, seed, ndim):
        oc = OC.parse("ST_CM")
        rng = np.random.default_rng(seed)
        s = sample_setting(oc, ndim, rng)
        # Irrelevant parameters stay at defaults.
        assert s["temporal_steps"] == 1
        if ndim == 2:
            assert s["merge_dim"] in (1, 2)
            assert s["stream_dim"] in (1, 2)

    def test_enum_capped_by_ndim(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            s = sample_setting(OC.parse("ST"), 2, rng)
            assert s["stream_dim"] <= 2

    def test_sample_settings_distinct(self):
        rng = np.random.default_rng(1)
        got = sample_settings(OC.parse("ST_BM_TB"), 3, 10, rng)
        assert len({g.as_tuple() for g in got}) == len(got)

    def test_sample_settings_bounded_by_space(self):
        rng = np.random.default_rng(2)
        oc = OC.parse("naive")
        size = param_space_size(oc, 2)
        got = sample_settings(oc, 2, size + 50, rng)
        assert len(got) <= size

    def test_deterministic_for_seed(self):
        a = sample_settings(OC.parse("ST"), 3, 5, np.random.default_rng(7))
        b = sample_settings(OC.parse("ST"), 3, 5, np.random.default_rng(7))
        assert [x.as_tuple() for x in a] == [x.as_tuple() for x in b]
