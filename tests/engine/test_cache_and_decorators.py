"""Cache accounting and the fault/retry decorator semantics."""

import pytest

from repro.engine import (
    CachingBackend,
    EvalRequest,
    FaultBackend,
    RetryBackend,
    ScalarBackend,
    VectorBackend,
    as_backend,
)
from repro.errors import DeviceLostError
from repro.gpu.faults import FaultConfig
from repro.optimizations.combos import ALL_OCS
from repro.optimizations.params import default_setting, sample_setting
from repro.profiling.runner import CampaignHealth, RetryPolicy, SimClock
from repro.stencil.generator import generate_population

import numpy as np


@pytest.fixture(scope="module")
def space():
    (stencil,) = generate_population(2, 1, seed=13)
    oc = ALL_OCS[0]
    rng = np.random.default_rng(31)
    settings = [default_setting()] + [
        sample_setting(oc, 2, rng) for _ in range(7)
    ]
    return stencil, oc, settings


class TestCacheAccounting:
    def test_miss_then_hit(self, space):
        stencil, oc, settings = space
        cached = CachingBackend(VectorBackend("V100"))
        reqs = [EvalRequest(stencil, oc, s) for s in settings]
        cached.evaluate_batch(reqs)
        info = cached.cache_info()
        assert info["misses"] == len(set(s.as_tuple() for s in settings))
        assert info["hits"] == len(settings) - info["misses"]
        assert info["size"] == info["misses"]
        cached.evaluate_batch(reqs)
        assert cached.cache_info()["hits"] == info["hits"] + len(settings)
        assert cached.cache_info()["misses"] == info["misses"]

    def test_intra_batch_duplicates_count_as_hits(self, space):
        stencil, oc, settings = space
        cached = CachingBackend(VectorBackend("V100"))
        reqs = [EvalRequest(stencil, oc, settings[0])] * 5
        out = cached.evaluate_batch(reqs)
        info = cached.cache_info()
        assert info["misses"] == 1 and info["hits"] == 4
        assert len({id(r) for r in out}) == 1  # one shared result object

    def test_clear_resets_everything(self, space):
        stencil, oc, settings = space
        cached = CachingBackend(VectorBackend("V100"))
        cached.evaluate_batch([EvalRequest(stencil, oc, settings[0])])
        cached.clear()
        assert cached.cache_info() == {"hits": 0, "misses": 0, "size": 0}

    def test_crashes_are_cached_too(self):
        (stencil,) = generate_population(3, 1, seed=3)
        oc = next(o for o in ALL_OCS if "ST" in o.name.split("_"))
        rng = np.random.default_rng(17)
        reqs = [
            EvalRequest(stencil, oc, sample_setting(oc, 3, rng))
            for _ in range(24)
        ]
        cached = CachingBackend(VectorBackend("P100"))
        first = cached.evaluate_batch(reqs)
        assert any(r.crashed for r in first)
        misses = cached.cache_info()["misses"]
        cached.evaluate_batch(reqs)
        assert cached.cache_info()["misses"] == misses  # crashes replayed


class TestFaultRetryDecorators:
    def _guarded(self, rate, policy=None, backend="V100"):
        health = CampaignHealth()
        clock = SimClock()
        be = RetryBackend(
            FaultBackend(ScalarBackend(backend), FaultConfig.uniform(rate), seed=5),
            policy or RetryPolicy(),
            clock,
            health,
        )
        be.begin_unit(("V100", 0))
        return be, health, clock

    def test_zero_rate_is_transparent(self, space):
        stencil, oc, settings = space
        be, health, _ = self._guarded(0.0)
        plain = ScalarBackend("V100")
        reqs = [EvalRequest(stencil, oc, s) for s in settings]
        a = be.evaluate_batch(reqs)
        b = plain.evaluate_batch(reqs)
        for r, g in zip(a, b):
            assert r.crashed == g.crashed
            if r.ok:
                assert r.time_ms == g.time_ms
        assert health.call_retries == 0 and health.backoff_s == 0.0

    def test_retries_converge_to_fault_free_times(self, space):
        stencil, oc, settings = space
        be, health, clock = self._guarded(0.3)
        plain = ScalarBackend("V100")
        reqs = [EvalRequest(stencil, oc, s) for s in settings]
        faulted = be.evaluate_batch(reqs)
        clean = plain.evaluate_batch(reqs)
        for r, g in zip(faulted, clean):
            assert r.crashed == g.crashed
            if g.ok:
                assert r.time_ms == g.time_ms  # retry convergence, exact
        assert health.call_retries > 0
        assert clock.now_s > 0.0
        assert health.backoff_s == pytest.approx(clock.now_s)

    def test_exhaustion_raises_transient(self, space):
        from repro.errors import TransientError

        stencil, oc, settings = space
        be, health, _ = self._guarded(
            1.0, policy=RetryPolicy(max_call_retries=2, max_point_retries=1)
        )
        # At certainty rates every attempt faults; exhaustion re-raises
        # the last attempt's transient error (timeout or sporadic) for
        # the runner's point-retry loop to absorb.
        with pytest.raises(TransientError):
            be.evaluate_batch([EvalRequest(stencil, oc, settings[0])])
        assert health.call_retries == 2

    def test_device_loss_raises_and_counts(self, space):
        stencil, oc, settings = space
        health = CampaignHealth()
        be = RetryBackend(
            FaultBackend(
                ScalarBackend("V100"),
                FaultConfig(device_lost_rate=1.0),
                seed=5,
            ),
            RetryPolicy(),
            SimClock(),
            health,
        )
        be.begin_unit(("V100", 0))
        with pytest.raises(DeviceLostError):
            be.evaluate_batch([EvalRequest(stencil, oc, settings[0])])
        assert health.device_lost == 1

    def test_begin_unit_rescopes_fault_draws(self, space):
        stencil, oc, settings = space
        be, _, _ = self._guarded(0.4)
        reqs = [EvalRequest(stencil, oc, s) for s in settings]
        first = be.evaluate_batch(reqs)
        be.begin_unit(("V100", 0))  # same unit key -> same draws
        again = be.evaluate_batch(reqs)
        for r, g in zip(first, again):
            if r.ok:
                assert r.time_ms == g.time_ms


class TestAsBackend:
    def test_backend_passthrough(self):
        be = VectorBackend("V100")
        assert as_backend(be) is be

    def test_simulator_wrap(self):
        from repro.gpu.simulator import GPUSimulator

        be = as_backend(GPUSimulator("A100"))
        assert isinstance(be, ScalarBackend)
        assert be.spec.name == "A100"

    def test_rejects_unrelated_objects(self):
        with pytest.raises(TypeError):
            as_backend(object())
