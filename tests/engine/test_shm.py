"""Shared-memory transport: packing round trips and segment lifecycle.

The safety claims under test: the packed request/result arrays decode to
content-identical requests and bit-identical results; segments never
outlive their batch (double unlinks are tolerated, the atexit ledger
sweeps stragglers); and the stale-segment reaper removes segments whose
creator process died without cleanup -- the SIGKILLed-tree case neither
the resource tracker nor ``finally`` blocks can cover.
"""

import os
import subprocess
import sys

import pytest

from repro.engine import make_backend
from repro.engine import shm as shm_transport
from repro.engine.bench import make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload(ndim=2, n_stencils=2, settings_per_oc=3, seed=5)


pytestmark = pytest.mark.skipif(
    not shm_transport.shm_available(), reason="no POSIX shared memory"
)


class TestPacking:
    def test_request_round_trip_preserves_identity(self, workload):
        seg = shm_transport.pack_requests(workload)
        try:
            batch = shm_transport.DecodedBatch(
                shm_transport.attach_segment(seg.name)
            )
            decoded = batch.requests(0, batch.n)
            assert len(decoded) == len(workload)
            for a, b in zip(workload, decoded):
                assert a.key() == b.key()
                assert a.oc is b.oc  # canonical registry object
                assert a.setting.as_tuple() == b.setting.as_tuple()
            batch.close()
        finally:
            shm_transport.unlink_segment(seg)

    def test_slices_cover_the_batch(self, workload):
        seg = shm_transport.pack_requests(workload)
        try:
            batch = shm_transport.DecodedBatch(
                shm_transport.attach_segment(seg.name)
            )
            keys = [
                r.key()
                for lo in range(0, batch.n, 17)
                for r in batch.requests(lo, min(lo + 17, batch.n))
            ]
            assert keys == [r.key() for r in workload]
            batch.close()
        finally:
            shm_transport.unlink_segment(seg)

    def test_result_round_trip_with_errors(self, workload):
        results = make_backend("vector", "V100").evaluate_batch(workload[:64])
        assert any(r.crashed for r in results), "workload should crash some"
        n = len(results)
        seg = shm_transport.create_segment(
            shm_transport.result_segment_size(n), tag="res"
        )
        times = status = None
        try:
            times, status = shm_transport.result_views(seg, n)
            errors = shm_transport.write_results(times, status, 0, results)
            decoded = shm_transport.read_results(times, status, errors)
            for a, b in zip(results, decoded):
                assert a.time_ms == b.time_ms
                if a.error is None:
                    assert b.error is None
                else:
                    assert type(b.error).__name__ == type(a.error).__name__
                    assert b.error.args == a.error.args
        finally:
            times = status = None
            shm_transport.unlink_segment(seg)


class TestLifecycle:
    def test_double_unlink_is_tolerated(self):
        seg = shm_transport.create_segment(64)
        assert seg.name in shm_transport.live_segments()
        assert shm_transport.unlink_segment(seg) is True
        assert shm_transport.unlink_segment(seg) is False
        assert seg.name not in shm_transport.live_segments()
        assert seg.name not in shm_transport.list_host_segments()

    def test_segment_names_carry_creator_pid(self):
        seg = shm_transport.create_segment(64)
        try:
            assert shm_transport._creator_pid(seg.name) == os.getpid()
        finally:
            shm_transport.unlink_segment(seg)

    def test_reaper_spares_live_creators(self):
        seg = shm_transport.create_segment(64)
        try:
            assert seg.name not in shm_transport.reap_stale_segments()
            assert seg.name in shm_transport.list_host_segments()
        finally:
            shm_transport.unlink_segment(seg)

    def test_reaper_collects_orphans_of_dead_processes(self, tmp_path):
        """Simulated parent crash: a child creates a segment, detaches it
        from its own resource tracker (so the tracker cannot clean up),
        and dies via ``os._exit`` (so the atexit sweep cannot either).
        The reaper must collect it once the creator pid is gone."""
        script = (
            "import os, sys\n"
            "from multiprocessing import resource_tracker\n"
            "from repro.engine import shm\n"
            "seg = shm.create_segment(64, tag='orphan')\n"
            "resource_tracker.unregister(seg._name, 'shared_memory')\n"
            "print(seg.name, flush=True)\n"
            "os._exit(0)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, check=True,
        )
        name = out.stdout.strip()
        assert name in shm_transport.list_host_segments()
        assert name in shm_transport.reap_stale_segments()
        assert name not in shm_transport.list_host_segments()

    def test_availability_probe_leaves_no_segment(self):
        before = shm_transport.list_host_segments()
        assert shm_transport._probe_shm() is True
        assert shm_transport.list_host_segments() == before
