"""Scalar/vector/cached backend equivalence: the engine's core contract.

The vectorized backend must be observationally equivalent to the scalar
reference over the whole configuration space: identical crash behavior
(same :class:`KernelLaunchError`, same message), bit-identical noise
keying, and times within 1e-9 relative.  The sweep here covers random
stencils x every OC x sampled settings x all four GPUs.
"""

import numpy as np
import pytest

from repro.engine import (
    CachingBackend,
    EvalRequest,
    ScalarBackend,
    VectorBackend,
    make_backend,
)
from repro.errors import KernelLaunchError
from repro.gpu.specs import GPU_ORDER
from repro.optimizations.combos import ALL_OCS
from repro.optimizations.params import default_setting, sample_setting
from repro.stencil.generator import generate_population

REL_TOL = 1e-9


def _sweep_requests(ndim: int, n_stencils: int, n_settings: int, seed: int):
    """Random stencils x all OCs x sampled settings (+ the default)."""
    rng = np.random.default_rng(seed)
    requests = []
    for stencil in generate_population(ndim, n_stencils, seed=seed):
        for oc in ALL_OCS:
            settings = [default_setting()] + [
                sample_setting(oc, stencil.ndim, rng) for _ in range(n_settings)
            ]
            requests.extend(EvalRequest(stencil, oc, s) for s in settings)
    return requests


def _assert_equivalent(reference, candidate, requests):
    ref = reference.evaluate_batch(requests)
    got = candidate.evaluate_batch(requests)
    assert len(ref) == len(got) == len(requests)
    for req, r, g in zip(requests, ref, got):
        ctx = f"{req.oc.name} {req.setting.as_tuple()}"
        if r.crashed:
            assert g.crashed, f"scalar crashed, {candidate.info.name} did not: {ctx}"
            assert type(g.error) is type(r.error), ctx
            assert str(g.error) == str(r.error), ctx
        else:
            assert g.ok, f"{candidate.info.name} crashed, scalar did not: {ctx}"
            assert g.time_ms == pytest.approx(r.time_ms, rel=REL_TOL), ctx


@pytest.mark.parametrize("gpu", GPU_ORDER)
@pytest.mark.parametrize("ndim", (2, 3))
def test_vector_matches_scalar_across_space(gpu, ndim):
    requests = _sweep_requests(ndim, n_stencils=2, n_settings=4, seed=17 + ndim)
    _assert_equivalent(ScalarBackend(gpu), VectorBackend(gpu), requests)


@pytest.mark.parametrize("gpu", ("V100", "2080Ti"))
def test_cached_matches_scalar_and_replays(gpu):
    requests = _sweep_requests(2, n_stencils=1, n_settings=3, seed=5)
    cached = CachingBackend(VectorBackend(gpu))
    _assert_equivalent(ScalarBackend(gpu), cached, requests)
    # A replay must return the exact same results from memory.
    first = cached.evaluate_batch(requests)
    hits_before = cached.cache_info()["hits"]
    second = cached.evaluate_batch(requests)
    assert cached.cache_info()["hits"] == hits_before + len(requests)
    for a, b in zip(first, second):
        assert a is b or (a.time_ms == b.time_ms and a.error is b.error)


def test_crash_parity_is_exact_on_crash_heavy_oc():
    # Streaming + temporal OCs crash for most settings; every crash must
    # carry the scalar path's exact message.
    rng = np.random.default_rng(99)
    (stencil,) = generate_population(3, 1, seed=3)
    ocs = [oc for oc in ALL_OCS if "ST" in oc.name.split("_") and "TB" in oc.name]
    assert ocs
    requests = [
        EvalRequest(stencil, oc, sample_setting(oc, 3, rng))
        for oc in ocs
        for _ in range(12)
    ]
    scalar = ScalarBackend("P100").evaluate_batch(requests)
    vector = VectorBackend("P100").evaluate_batch(requests)
    crashes = sum(r.crashed for r in scalar)
    assert crashes > 0
    for r, g in zip(scalar, vector):
        assert r.crashed == g.crashed
        if r.crashed:
            assert str(r.error) == str(g.error)


def test_noise_is_bit_identical():
    # Noise is part of the equivalence contract *bit for bit*: jitter is
    # keyed by content, and the vector path reuses the exact blake2b /
    # Box-Muller arithmetic of the scalar path.
    rng = np.random.default_rng(7)
    (stencil,) = generate_population(2, 1, seed=11)
    oc = ALL_OCS[0]
    requests = [
        EvalRequest(stencil, oc, sample_setting(oc, 2, rng)) for _ in range(16)
    ]
    noisy_s = ScalarBackend("A100", sigma=0.25).evaluate_batch(requests)
    noisy_v = VectorBackend("A100", sigma=0.25).evaluate_batch(requests)
    for r, g in zip(noisy_s, noisy_v):
        if r.ok:
            assert g.time_ms == r.time_ms  # exact equality, not approx


def test_results_independent_of_batch_composition():
    # Per-point purity: a request's result must not depend on what else
    # shares its batch (ordering, duplication, singleton batches).
    rng = np.random.default_rng(23)
    (stencil,) = generate_population(2, 1, seed=29)
    oc = ALL_OCS[4]
    settings = [sample_setting(oc, 2, rng) for _ in range(10)]
    requests = [EvalRequest(stencil, oc, s) for s in settings]
    vb = VectorBackend("V100")
    together = vb.evaluate_batch(requests)
    alone = [vb.evaluate_batch([r])[0] for r in requests]
    shuffled = vb.evaluate_batch(requests[::-1])[::-1]
    for a, b, c in zip(together, alone, shuffled):
        if a.crashed:
            assert b.crashed and c.crashed
            assert str(a.error) == str(b.error) == str(c.error)
        else:
            assert a.time_ms == b.time_ms == c.time_ms


def test_make_backend_kinds():
    for kind, vectorized, caching in (
        ("scalar", False, False),
        ("vector", True, False),
        ("cached", True, True),
    ):
        be = make_backend(kind, "V100")
        assert be.spec.name == "V100"
        assert be.info.vectorized == vectorized
        assert be.info.caching == caching
    with pytest.raises(ValueError):
        make_backend("quantum", "V100")


def test_scalar_backend_time_matches_simulator():
    from repro.gpu.simulator import GPUSimulator, simulate

    (stencil,) = generate_population(2, 1, seed=41)
    oc = ALL_OCS[1]
    setting = default_setting()
    sim = GPUSimulator("V100")
    be = ScalarBackend(sim)
    try:
        expected = sim.time(stencil, oc, setting)
    except KernelLaunchError:
        with pytest.raises(KernelLaunchError):
            be.time(stencil, oc, setting)
    else:
        assert be.time(stencil, oc, setting) == expected
        assert simulate("V100", stencil, oc, setting) == expected
