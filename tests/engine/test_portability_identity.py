"""NVIDIA bit-identity under the vendor layer, and AMD engine parity.

The portability refactor (ISSUE 10) threaded per-vendor constants
through occupancy, the kernel model and every engine backend.  The
contract: on the four NVIDIA GPUs nothing moved, down to the last bit.
These pins were captured on the pre-refactor tree; they fail on any
drift in the simulator, the campaign runner or their serialization.

The second half extends the scalar/vector equivalence contract (see
``test_backend_equivalence``) to the AMD wavefront-64 devices.
"""

import pytest

from repro.engine import ScalarBackend, VectorBackend
from repro.gpu.specs import AMD_GPU_ORDER
from repro.gpu.simulator import simulate
from repro.optimizations.combos import OC_BY_NAME
from repro.optimizations.params import ParamSetting
from repro.stencil.library import get

from .test_backend_equivalence import _assert_equivalent, _sweep_requests

#: simulate() on one fixed configuration, captured pre-refactor.  Exact
#: float equality: the vendor layer must be a pure refactor on NVIDIA.
_PINNED_SETTING = ParamSetting(block_x=64, block_y=4, stream_dim=2, use_smem=1)
_PINNED_TIMES = {
    "2080Ti": 56.27873454971829,
    "P100": 51.06508449158734,
    "V100": 70.49114262083825,
    "A100": 59.17250177293866,
}

#: Same configuration on the AMD devices: a change detector, not an
#: identity pin -- it documents that the model prices wavefront-64
#: hardware differently and keeps those paths deterministic.
_AMD_TIMES = {
    "MI100": 80.52852488776631,
    "MI210": 47.780521723068986,
    "MI250": 89.03656660550155,
}


class TestNvidiaBitIdentity:
    @pytest.mark.parametrize("gpu,expected", sorted(_PINNED_TIMES.items()))
    def test_simulate_pins(self, gpu, expected):
        t = simulate(gpu, get("star2d2r"), OC_BY_NAME["ST_RT"], _PINNED_SETTING)
        assert t == expected

    def test_campaign_digest_unchanged(self):
        from repro.profiling.profiler import run_campaign
        from repro.profiling.registry import checksum_campaign_doc
        from repro.profiling.storage import campaign_to_dict
        from repro.stencil.generator import generate_population

        pop = generate_population(2, 4, seed=17)
        camp = run_campaign(pop, gpus=("V100", "A100"), n_settings=2, seed=17)
        digest = checksum_campaign_doc(campaign_to_dict(camp))
        assert digest == "dff02253b8b9579a3471ff2eb515dc12"


class TestAmdDeterminism:
    @pytest.mark.parametrize("gpu,expected", sorted(_AMD_TIMES.items()))
    def test_simulate_is_deterministic(self, gpu, expected):
        t = simulate(gpu, get("star2d2r"), OC_BY_NAME["ST_RT"], _PINNED_SETTING)
        assert t == expected

    def test_amd_slower_than_mi210_on_streaming_pick(self):
        # Sanity on the spec table: the bandwidth-doubled MI210 beats
        # MI100 on this bandwidth-bound configuration.
        assert _AMD_TIMES["MI210"] < _AMD_TIMES["MI100"]


@pytest.mark.parametrize("gpu", AMD_GPU_ORDER)
def test_vector_matches_scalar_on_amd(gpu):
    requests = _sweep_requests(2, n_stencils=2, n_settings=3, seed=23)
    _assert_equivalent(ScalarBackend(gpu), VectorBackend(gpu), requests)
