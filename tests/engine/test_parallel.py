"""ParallelBackend: codec round trips and bit-identical sharded results.

The determinism claim under test: results are pure content-keyed
functions of (GPU, stencil, OC, setting, grid), so sharding a batch
across any number of workers with any chunk size reassembles to exactly
the wrapped backend's output -- times, crash classes and crash messages
bit for bit.
"""

import pytest

from repro.engine import BackendSpec, ParallelBackend, make_backend
from repro.engine.bench import make_workload
from repro.engine.parallel import (
    decode_requests,
    decode_results,
    encode_requests,
    encode_results,
)
from repro.errors import KernelLaunchError


@pytest.fixture(scope="module")
def workload():
    return make_workload(ndim=2, n_stencils=2, settings_per_oc=3, seed=5)


def _digest(results):
    """Comparable identity of a result list (times + error identity)."""
    return tuple(
        (r.time_ms, type(r.error).__name__, r.error.args)
        if r.error is not None
        else (r.time_ms, None, None)
        for r in results
    )


class TestCodec:
    def test_request_round_trip_preserves_identity(self, workload):
        decoded = decode_requests(encode_requests(workload))
        assert len(decoded) == len(workload)
        for a, b in zip(workload, decoded):
            assert a.key() == b.key()
            assert a.oc is b.oc  # canonical registry object

    def test_stencil_table_deduplicates(self, workload):
        doc = encode_requests(workload)
        names = [row[2] for row in doc["stencils"]]
        assert len(names) == len(set(names)) == 2

    def test_result_round_trip(self, workload):
        backend = make_backend("vector", "V100")
        results = backend.evaluate_batch(workload[:64])
        assert any(r.crashed for r in results), "workload should crash some"
        decoded = decode_results(encode_results(results))
        assert _digest(decoded) == _digest(results)
        crash = next(r for r in decoded if r.crashed)
        assert isinstance(crash.error, KernelLaunchError)


class TestBitIdenticalSharding:
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("chunk_size", [None, 7])
    def test_parallel_scalar_matches_scalar(self, workload, workers,
                                            chunk_size, transport):
        reference = make_backend("scalar", "V100").evaluate_batch(workload)
        with ParallelBackend(
            BackendSpec(kind="scalar", gpu="V100"),
            workers=workers,
            chunk_size=chunk_size,
            context="fork",
            transport=transport,
        ) as backend:
            sharded = backend.evaluate_batch(workload)
        assert _digest(sharded) == _digest(reference)

    @pytest.mark.parametrize("kind", ["vector", "cached"])
    def test_parallel_inner_matches_single_process_inner(self, workload, kind):
        reference = make_backend(kind, "A100").evaluate_batch(workload)
        with ParallelBackend(
            BackendSpec(kind=kind, gpu="A100"), workers=2, context="fork"
        ) as backend:
            sharded = backend.evaluate_batch(workload)
        assert _digest(sharded) == _digest(reference)

    @pytest.mark.parametrize("chunk_size", [None, 7])
    def test_shm_matches_pickle(self, workload, chunk_size):
        """The two transports reassemble the same batch identically."""
        digests = {}
        for transport in ("shm", "pickle"):
            with ParallelBackend(
                BackendSpec(kind="vector", gpu="V100"),
                workers=2,
                chunk_size=chunk_size,
                context="fork",
                transport=transport,
            ) as backend:
                digests[transport] = _digest(backend.evaluate_batch(workload))
        assert digests["shm"] == digests["pickle"]

    def test_single_worker_bypasses_pool(self, workload):
        backend = ParallelBackend(BackendSpec(), workers=1)
        try:
            results = backend.evaluate_batch(workload[:8])
            assert len(results) == 8
            assert backend._pool._executor is None
        finally:
            backend.close()


class TestChunking:
    def test_adaptive_chunks_spread_small_batches(self):
        """With no explicit chunk_size, small batches split across all
        workers instead of serializing through one chunk."""
        backend = ParallelBackend(BackendSpec(), workers=4)
        try:
            spans = backend._chunks(40)
            assert spans[0] == (0, 10)
            assert len(spans) == 4
        finally:
            backend.close()

    def test_adaptive_chunks_cap_by_transport(self):
        from repro.engine.parallel import TRANSPORT_CHUNK_CAPS

        for transport, cap in TRANSPORT_CHUNK_CAPS.items():
            backend = ParallelBackend(
                BackendSpec(), workers=2, transport=transport
            )
            try:
                if backend.transport != transport:
                    continue  # shm unavailable on this host
                spans = backend._chunks(cap * 4)
                assert spans[0] == (0, cap)
            finally:
                backend.close()

    def test_explicit_chunk_size_wins(self):
        backend = ParallelBackend(BackendSpec(), workers=2, chunk_size=5)
        try:
            assert backend._chunks(12) == [(0, 5), (5, 10), (10, 12)]
        finally:
            backend.close()


class TestWorkerDeath:
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_killed_worker_recovers_without_leaks(self, workload, tmp_path,
                                                  monkeypatch, transport):
        """A worker dying mid-chunk (simulated ``os._exit``) breaks the
        pool; the batch restarts, re-dispatches, and still reassembles
        bit-identically -- with every shared segment unlinked."""
        import repro.engine.parallel as par
        from repro.engine import shm as shm_transport

        reference = make_backend("vector", "V100").evaluate_batch(workload)
        # Fork-context workers inherit the flag path; O_EXCL on the flag
        # file makes exactly one worker crash exactly once.
        monkeypatch.setattr(
            par, "_CRASH_FLAG_PATH", str(tmp_path / "crash-flag")
        )
        with ParallelBackend(
            BackendSpec(kind="vector", gpu="V100"),
            workers=2,
            context="fork",
            transport=transport,
        ) as backend:
            results = backend.evaluate_batch(workload)
            assert backend.worker_deaths == 1
        assert (tmp_path / "crash-flag").exists()
        assert _digest(results) == _digest(reference)
        assert not shm_transport.live_segments()
        assert not shm_transport.list_host_segments()


class TestMetadata:
    def test_info_names_inner_workers_and_transport(self):
        backend = ParallelBackend(
            BackendSpec(kind="vector", gpu="V100"), workers=3
        )
        try:
            info = backend.info
            assert info.name == (
                f"parallel(vector, workers=3, transport={backend.transport})"
            )
            assert info.vectorized
        finally:
            backend.close()

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ParallelBackend(BackendSpec(), workers=2, transport="carrier-pigeon")

    def test_shm_unavailable_falls_back_to_pickle(self, monkeypatch):
        from repro.engine import shm as shm_transport

        monkeypatch.setattr(shm_transport, "_AVAILABLE", False)
        backend = ParallelBackend(BackendSpec(), workers=2, transport="shm")
        try:
            assert backend.requested_transport == "shm"
            assert backend.transport == "pickle"
        finally:
            backend.close()

    def test_make_backend_kind(self):
        backend = make_backend("parallel", "P100", workers=2)
        try:
            assert backend.spec.name == "P100"
            assert backend.workers == 2
        finally:
            backend.close()

    def test_spec_accepts_gpuspec_object(self):
        from repro.gpu.specs import GPUS

        spec = BackendSpec(gpu=GPUS["V100"])
        assert spec.gpu == "V100"
