"""The refactor's contract: tune() reproduces every legacy path bit for bit.

``golden_pre_refactor.json`` was generated (``make_golden.py``) from the
search code as it stood before the unified front door landed: the
paper's ``RandomSearch`` with and without coordinate-descent refinement,
``GeneticSearch``, and a whole profiling campaign.  Every slot stores
the best setting, the ``repr`` of the best time (exact float round
trip), and a BLAKE2b digest over the full measurement list, so any
assertion failure here is a real bit-level behavior change -- which for
the random path is also a campaign-format break.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.gpu import GPUSimulator
from repro.gpu.specs import GPU_ORDER
from repro.optimizations import OC
from repro.profiling import RandomSearch, run_campaign
from repro.profiling.storage import campaign_to_dict
from repro.stencil import generate_population, get
from repro.tuning import GeneticSearch

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_pre_refactor.json").read_text()
)


def _digest_measurements(measurements) -> str:
    h = hashlib.blake2b(digest_size=16)
    for m in measurements:
        h.update(
            repr(
                (m.stencil_id, m.oc, m.setting.as_tuple(), m.gpu, m.time_ms)
            ).encode()
        )
    return h.hexdigest()


def _slots(gpu):
    for name in GOLDEN["stencils"]:
        stencil = get(name)
        sid = GOLDEN["stencils"].index(name)
        for oc_name in GOLDEN["ocs"]:
            yield stencil, sid, OC.parse(oc_name), f"{gpu}/{name}/{oc_name}"


@pytest.mark.parametrize("gpu", GPU_ORDER)
@pytest.mark.parametrize("refine", (True, False), ids=("refined", "unrefined"))
def test_random_search_is_bit_identical(gpu, refine):
    """Random walk (+ coordinate descent) through tune() == legacy."""
    table = GOLDEN["random" if refine else "random_unrefined"]
    search = RandomSearch(
        GPUSimulator(gpu), GOLDEN["n_settings"], seed=GOLDEN["seed"],
        refine=refine,
    )
    for stencil, sid, oc, key in _slots(gpu):
        want = table[key]
        result, measurements = search.tune_oc(stencil, sid, oc)
        if want["crashed_out"]:
            assert result is None and measurements == [], key
            continue
        assert result is not None, key
        assert list(result.best_setting.as_tuple()) == want["best_setting"], key
        assert repr(result.best_time_ms) == want["best_time_ms"], key
        assert result.n_settings == want["n_settings"], key
        assert result.crashed == want["crashed"], key
        assert _digest_measurements(measurements) == want["measurements"], key


@pytest.mark.parametrize("gpu", GPU_ORDER)
def test_genetic_search_is_bit_identical(gpu):
    """GeneticSearch through tune() (legacy RNG stream) == legacy."""
    ga = GeneticSearch(
        GPUSimulator(gpu), population=8, generations=4, seed=GOLDEN["seed"]
    )
    for stencil, _sid, oc, key in _slots(gpu):
        want = GOLDEN["genetic"][key]
        got = ga.tune_oc(stencil, oc)
        if want["crashed_out"]:
            assert got is None, key
            continue
        assert got is not None, key
        assert list(got.best_setting.as_tuple()) == want["best_setting"], key
        assert repr(got.best_time_ms) == want["best_time_ms"], key
        assert got.evaluations == want["evaluations"], key


def test_campaign_digest_is_unchanged():
    """A whole profiling campaign hashes exactly as before the refactor."""
    pop = generate_population(2, 4, seed=GOLDEN["seed"])
    campaign = run_campaign(
        pop, gpus=GPU_ORDER, n_settings=4, seed=GOLDEN["seed"]
    )
    doc = json.dumps(campaign_to_dict(campaign), sort_keys=True)
    digest = hashlib.blake2b(doc.encode(), digest_size=16).hexdigest()
    assert digest == GOLDEN["campaign_digest"]
