"""Persistent tuning cache: replay fidelity, keying, atomicity rules."""

import json

import pytest

from repro.engine import EvalRequest, EvalResult, VectorBackend, make_backend
from repro.errors import KernelLaunchError
from repro.optimizations import OC
from repro.optimizations.params import sample_setting
from repro.stencil import box, get
from repro.tuning import TuningCache, tune

import numpy as np

STENCIL = get("star2d2r")
ST = OC.parse("ST")


def _requests(n=8, seed=0, oc=ST, stencil=STENCIL):
    rng = np.random.default_rng(seed)
    out, seen = [], set()
    while len(out) < n:
        s = sample_setting(oc, stencil.ndim, rng)
        if s.as_tuple() in seen:
            continue
        seen.add(s.as_tuple())
        out.append(EvalRequest(stencil, oc, s))
    return out


class TestReplay:
    def test_second_run_is_all_hits_and_bit_identical(self, tmp_path):
        reqs = _requests(12)
        first = TuningCache(VectorBackend("V100"), tmp_path)
        a = first.evaluate_batch(reqs)
        first.flush()
        assert first.misses > 0 and first.hits == len(reqs) - first.misses

        class Exploding:
            """A substrate that must never be consulted on replay."""

            spec = VectorBackend("V100").spec
            sigma = 0.03
            info = VectorBackend("V100").info

            def evaluate_batch(self, requests):
                raise AssertionError("cache should have served this")

        second = TuningCache(Exploding(), tmp_path)
        b = second.evaluate_batch(reqs)
        assert second.hits == len(reqs) and second.misses == 0
        for x, y in zip(a, b):
            assert x.time_ms == y.time_ms  # exact float round trip

    def test_crashes_are_replayed_with_message(self, tmp_path):
        # TB without ST crashes on 3-D order-4 stencils (for sampled
        # settings; the neutral default may run).
        reqs = _requests(8, seed=3, oc=OC.parse("TB"), stencil=box(3, 4))
        cache = TuningCache(VectorBackend("V100"), tmp_path)
        first = cache.evaluate_batch(reqs)
        assert any(r.crashed for r in first)
        cache.flush()
        replay = TuningCache(VectorBackend("V100"), tmp_path)
        second = replay.evaluate_batch(reqs)
        assert replay.hits == len(reqs)
        for a, b in zip(first, second):
            assert a.crashed == b.crashed
            if a.crashed:
                assert isinstance(b.error, KernelLaunchError)
                assert str(b.error) == str(a.error)

    def test_intra_batch_duplicates_hit(self, tmp_path):
        req = _requests(1)[0]
        cache = TuningCache(VectorBackend("V100"), tmp_path)
        a, b = cache.evaluate_batch([req, req])
        assert cache.misses == 1 and cache.hits == 1
        assert a.time_ms == b.time_ms


class TestKeying:
    def test_gpu_and_sigma_partition_the_cache(self, tmp_path):
        reqs = _requests(4)
        TuningCache(VectorBackend("V100"), tmp_path).evaluate_batch(reqs)
        other = TuningCache(VectorBackend("A100"), tmp_path)
        other.evaluate_batch(reqs)
        assert other.hits == 0  # different GPU: disjoint groups
        noisy = TuningCache(VectorBackend("V100", sigma=0.5), tmp_path)
        noisy.evaluate_batch(reqs)
        assert noisy.hits == 0  # different sigma: disjoint groups

    def test_grid_partitions_the_cache(self, tmp_path):
        small = [
            EvalRequest(r.stencil, r.oc, r.setting, grid=(256, 256))
            for r in _requests(4)
        ]
        cache = TuningCache(VectorBackend("V100"), tmp_path)
        cache.evaluate_batch(_requests(4))
        assert cache.misses == 4
        cache.evaluate_batch(small)
        assert cache.misses == 8  # reduced grid never aliases the full one


class TestTransientsAndCorruption:
    def test_transient_faults_are_not_persisted(self, tmp_path):
        class Flaky:
            spec = VectorBackend("V100").spec
            sigma = 0.03
            info = VectorBackend("V100").info

            def evaluate_batch(self, requests):
                return [EvalResult(error=TimeoutError("hang")) for _ in requests]

        cache = TuningCache(Flaky(), tmp_path)
        (res,) = cache.evaluate_batch(_requests(1))
        assert not res.ok and not res.crashed
        cache.flush()
        # Nothing settled, so nothing was written.
        assert not any(
            json.loads(p.read_text())["entries"]
            for p in tmp_path.glob("*.json")
        )

    def test_corrupt_document_is_a_miss_and_rebuilt(self, tmp_path):
        reqs = _requests(3)
        cache = TuningCache(VectorBackend("V100"), tmp_path)
        first = cache.evaluate_batch(reqs)
        cache.flush()
        (doc,) = list(tmp_path.glob("*.json"))
        doc.write_text("{ not json")
        again = TuningCache(VectorBackend("V100"), tmp_path)
        second = again.evaluate_batch(reqs)
        assert again.misses == 3  # corrupt file never trusted
        again.flush()
        rebuilt = json.loads(doc.read_text())
        assert len(rebuilt["entries"]) == 3
        for x, y in zip(first, second):
            assert x.time_ms == y.time_ms

    def test_newer_format_version_is_ignored(self, tmp_path):
        reqs = _requests(2)
        cache = TuningCache(VectorBackend("V100"), tmp_path)
        cache.evaluate_batch(reqs)
        cache.flush()
        (doc,) = list(tmp_path.glob("*.json"))
        body = json.loads(doc.read_text())
        body["format"] = 99
        doc.write_text(json.dumps(body))
        fresh = TuningCache(VectorBackend("V100"), tmp_path)
        fresh.evaluate_batch(reqs)
        assert fresh.hits == 0 and fresh.misses == 2


class TestFrontDoorIntegration:
    def test_tune_reports_hits_and_misses(self, tmp_path):
        kwargs = dict(
            oc=ST, gpu="2080Ti", strategy="random", budget=8, seed=7,
            cache_dir=tmp_path,
        )
        cold = tune(STENCIL, **kwargs)
        assert cold.cache_hits == 0 and cold.cache_misses > 0
        warm = tune(STENCIL, **kwargs)
        assert warm.cache_misses == 0
        assert warm.cache_hits == cold.cache_misses
        assert warm.best_setting == cold.best_setting
        assert warm.best_time_ms == cold.best_time_ms

    def test_cache_backend_passthrough(self, tmp_path):
        # An explicit TuningCache instance as backend= is used directly.
        cache = TuningCache(make_backend("vector", "V100"), tmp_path)
        a = tune(STENCIL, oc=ST, backend=cache, budget=6, seed=1)
        assert a.cache_misses > 0
        b = tune(STENCIL, oc=ST, backend=cache, budget=6, seed=1)
        assert b.cache_misses == 0 and b.cache_hits > 0

    def test_flush_survives_strategy_error(self, tmp_path):
        class Boom:
            name = "boom"

            def stream_components(self, seed, stencil_id, oc):
                return (seed,)

            def prepare(self, ctx):
                self._asked = False

            def ask(self):
                if self._asked:
                    raise RuntimeError("strategy exploded")
                self._asked = True
                from repro.tuning import AskBatch
                from repro.optimizations.params import default_setting

                return AskBatch([default_setting()])

            def tell(self, batch, results):
                pass

            def finish(self):  # pragma: no cover - never reached
                raise AssertionError

        with pytest.raises(RuntimeError, match="exploded"):
            tune(
                STENCIL, oc=ST, gpu="V100", strategy=Boom(),
                cache_dir=tmp_path,
            )
        # The settled measurement was flushed despite the error.
        assert any(
            json.loads(p.read_text())["entries"]
            for p in tmp_path.glob("*.json")
        )
