"""Tests for the csTuner-style genetic parameter search."""

import pytest

from repro.gpu import GPUSimulator
from repro.optimizations import OC
from repro.profiling import RandomSearch
from repro.tuning import GeneticSearch
from repro.stencil import box, get, star


@pytest.fixture(scope="module")
def sim():
    return GPUSimulator("V100")


class TestGeneticSearch:
    def test_finds_valid_setting(self, sim):
        ga = GeneticSearch(sim, population=8, generations=3, seed=0)
        result = ga.tune_oc(get("star2d2r"), OC.parse("ST"))
        assert result is not None
        assert result.best_time_ms > 0
        assert result.evaluations > 0
        # The returned setting reproduces the reported time.
        assert sim.time(
            get("star2d2r"), OC.parse("ST"), result.best_setting
        ) == pytest.approx(result.best_time_ms)

    def test_deterministic(self, sim):
        a = GeneticSearch(sim, seed=3).tune_oc(get("box2d1r"), OC.parse("ST_CM"))
        b = GeneticSearch(sim, seed=3).tune_oc(get("box2d1r"), OC.parse("ST_CM"))
        assert a.best_time_ms == b.best_time_ms
        assert a.best_setting == b.best_setting

    def test_more_generations_never_worse(self, sim):
        s = get("star3d2r")
        short = GeneticSearch(sim, population=8, generations=1, seed=1)
        long = GeneticSearch(sim, population=8, generations=6, seed=1)
        t_short = short.tune_oc(s, OC.parse("ST_RT")).best_time_ms
        t_long = long.tune_oc(s, OC.parse("ST_RT")).best_time_ms
        assert t_long <= t_short * 1.05

    def test_crashy_oc_returns_none(self, sim):
        # TB without ST cannot run on 3-D order-4 stencils.
        ga = GeneticSearch(sim, population=8, generations=2, seed=0)
        assert ga.tune_oc(box(3, 4), OC.parse("TB")) is None

    def test_competitive_with_refined_random(self, sim):
        s = get("cross2d3r")
        oc = OC.parse("ST_BM_RT_TB")
        ga = GeneticSearch(sim, population=12, generations=6, seed=0)
        ga_t = ga.tune_oc(s, oc).best_time_ms
        rnd = RandomSearch(sim, 8, seed=0)
        rnd_t = rnd.tune_oc(s, 0, oc)[0].best_time_ms
        assert ga_t < rnd_t * 1.6  # same ballpark at comparable budget

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            GeneticSearch(sim, population=2)
        with pytest.raises(ValueError):
            GeneticSearch(sim, mutation_rate=1.5)
