"""ParameterSpace: layout order, legacy sampling, restriction grammar."""

import numpy as np
import pytest

from repro.errors import TuningError
from repro.optimizations import OC
from repro.optimizations.params import (
    PARAM_NAMES,
    ParamSetting,
    relevant_params,
    sample_setting,
)
from repro.tuning import ParameterSpace, compile_restriction


class TestConstruction:
    def test_for_oc_uses_relevant_params_in_layout_order(self):
        oc = OC.parse("ST_CM_RT_TB")
        space = ParameterSpace.for_oc(oc, ndim=2)
        assert list(space.names) == list(relevant_params(oc, 2))
        order = {n: i for i, n in enumerate(PARAM_NAMES)}
        assert list(space.names) == sorted(space.names, key=order.__getitem__)

    def test_params_reordered_to_layout(self):
        # Insertion order must not matter: same space either way.
        a = ParameterSpace({"stream_dim": (0, 1), "block_x": (32, 64)})
        b = ParameterSpace({"block_x": (32, 64), "stream_dim": (0, 1)})
        assert a.names == b.names == ("block_x", "stream_dim")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(TuningError, match="unknown parameter"):
            ParameterSpace({"warp_count": (1, 2)})

    def test_empty_space_rejected(self):
        with pytest.raises(TuningError, match="at least one"):
            ParameterSpace({})
        with pytest.raises(TuningError, match="no choices"):
            ParameterSpace({"block_x": ()})

    def test_size_is_cartesian_product(self):
        space = ParameterSpace({"block_x": (32, 64, 128), "use_smem": (0, 1)})
        assert space.size == 6
        assert len(list(space.enumerate())) == 6


class TestLegacySampling:
    @pytest.mark.parametrize("oc_name", ("naive", "ST", "ST_CM_RT_TB", "BM"))
    @pytest.mark.parametrize("ndim", (2, 3))
    def test_sample_matches_legacy_sample_setting(self, oc_name, ndim):
        # The unrestricted draw sequence is the pre-refactor one, bit for
        # bit -- campaign digests depend on it.
        oc = OC.parse(oc_name)
        space = ParameterSpace.for_oc(oc, ndim)
        a, b = np.random.default_rng(11), np.random.default_rng(11)
        for _ in range(32):
            assert space.sample(a).as_tuple() == sample_setting(oc, ndim, b).as_tuple()

    def test_sample_many_dedupes(self):
        space = ParameterSpace({"use_smem": (0, 1), "stream_dim": (0, 1)})
        got = space.sample_many(10, np.random.default_rng(0))
        keys = [s.as_tuple() for s in got]
        assert len(keys) == len(set(keys)) <= 4


class TestRestrictionGrammar:
    def test_arithmetic_comparisons_and_bool_ops(self):
        r = compile_restriction(
            "block_x * block_y <= 1024 and (use_smem == 1 or block_x < 64)"
        )
        assert r({"block_x": 32, "block_y": 8, "use_smem": 0})
        assert not r({"block_x": 256, "block_y": 8, "use_smem": 1})

    def test_chained_comparison_and_functions(self):
        r = compile_restriction("16 <= min(block_x, block_y) <= 64")
        assert r({"block_x": 32, "block_y": 64})
        assert not r({"block_x": 8, "block_y": 64})

    def test_callable_accepted(self):
        space = ParameterSpace(
            {"block_x": (32, 64), "use_smem": (0, 1)},
            restrictions=[lambda s: s["use_smem"] == 1],
        )
        assert all(s["use_smem"] == 1 for s in space.enumerate())

    @pytest.mark.parametrize(
        "bad",
        (
            "__import__('os')",                    # call not in whitelist
            "block_x.bit_length() > 2",            # attribute access
            "[1, 2][block_x]",                     # subscript / list literal
            "(lambda: 1)()",                       # lambda
            "block_x == 'fast'",                   # non-numeric literal
            "nblocks > 4",                         # unknown name
            "min(block_x, default=1) > 2",         # keyword arguments
            "block_x >",                           # syntax error
        ),
    )
    def test_grammar_violations_rejected(self, bad):
        with pytest.raises(TuningError):
            compile_restriction(bad, ("block_x", "block_y"))

    def test_unknown_name_limited_to_space_params(self):
        # block_y is a real parameter, but not of this space.
        space_names = ("block_x", "use_smem")
        with pytest.raises(TuningError, match="unknown parameter 'block_y'"):
            compile_restriction("block_y > 1", space_names)


class TestRestrictedSpaces:
    def _space(self):
        return ParameterSpace(
            {"block_x": (16, 32, 64, 128), "stream_unroll": (1, 2, 4)},
            restrictions=["block_x * stream_unroll <= 128"],
        )

    def test_sampling_respects_restrictions(self):
        space = self._space()
        rng = np.random.default_rng(3)
        for _ in range(64):
            s = space.sample(rng)
            assert s["block_x"] * s["stream_unroll"] <= 128

    def test_enumerate_and_contains(self):
        space = self._space()
        allowed = list(space.enumerate())
        assert all(s["block_x"] * s["stream_unroll"] <= 128 for s in allowed)
        assert len(allowed) < space.size  # something was actually filtered
        bad = ParamSetting(block_x=128, stream_unroll=4)
        assert bad not in space
        assert allowed[0] in space

    def test_neighbors_filtered(self):
        space = self._space()
        start = ParamSetting(block_x=64, stream_unroll=2)
        for n in space.neighbors(start, "stream_unroll"):
            assert n["block_x"] * n["stream_unroll"] <= 128

    def test_unsatisfiable_restriction_raises(self):
        space = ParameterSpace(
            {"block_x": (16, 32)}, restrictions=["block_x > 1000"]
        )
        with pytest.raises(TuningError, match="could not sample"):
            space.sample(np.random.default_rng(0))
