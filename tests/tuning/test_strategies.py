"""The tune() front door and its strategy zoo.

Covers: every registered strategy finds a valid optimum through the same
driver; results are deterministic for a fixed (strategy, seed, budget)
regardless of backend flavor; fidelity-weighted budget accounting; and
front-door misuse surfacing as TuningError.
"""

import pytest

from repro.engine import make_backend
from repro.errors import TuningError
from repro.gpu import GPUSimulator
from repro.optimizations import OC
from repro.stencil import box, get
from repro.tuning import (
    GeneticStrategy,
    ParameterSpace,
    TuneResult,
    available_strategies,
    make_strategy,
    tune,
)

STENCIL = get("star2d2r")
ST = OC.parse("ST")

ZOO = ("random", "coordinate", "genetic", "annealing", "bayes", "halving")


class TestZoo:
    def test_registry_is_complete(self):
        assert available_strategies() == tuple(sorted(ZOO))

    def test_unknown_strategy(self):
        with pytest.raises(TuningError, match="unknown strategy"):
            make_strategy("gradient-descent")
        with pytest.raises(TuningError, match="unknown strategy"):
            tune(STENCIL, oc=ST, gpu="V100", strategy="nope")

    def test_bad_strategy_options(self):
        with pytest.raises(TuningError, match="strategy 'random'"):
            make_strategy("random", temperature=3)

    @pytest.mark.parametrize("name", ZOO)
    def test_every_strategy_tunes(self, name):
        result = tune(
            STENCIL, oc=ST, gpu="2080Ti", strategy=name, budget=24, seed=5
        )
        assert isinstance(result, TuneResult)
        assert result.ok and result.strategy == name
        assert result.trials > 0 and result.crashed >= 0
        assert len(result.trial_log) == result.trials
        # The reported best is a real full-fidelity measurement.
        sim = GPUSimulator("2080Ti")
        assert sim.time(STENCIL, ST, result.best_setting) == pytest.approx(
            result.best_time_ms
        )

    @pytest.mark.parametrize("name", ZOO)
    def test_deterministic_given_seed(self, name):
        a = tune(STENCIL, oc=ST, gpu="P100", strategy=name, budget=16, seed=9)
        b = tune(STENCIL, oc=ST, gpu="P100", strategy=name, budget=16, seed=9)
        assert a.best_setting == b.best_setting
        assert a.best_time_ms == b.best_time_ms
        assert a.trials == b.trials and a.cost == b.cost
        assert [r.setting.as_tuple() for r in a.trial_log] == [
            r.setting.as_tuple() for r in b.trial_log
        ]

    def test_strategies_use_distinct_streams(self):
        # Same seed, different zoo members: different named RNG streams,
        # so their initial designs must differ.
        a = tune(STENCIL, oc=ST, gpu="P100", strategy="annealing", budget=12, seed=2)
        b = tune(STENCIL, oc=ST, gpu="P100", strategy="bayes", budget=12, seed=2)
        assert [r.setting.as_tuple() for r in a.trial_log[:8]] != [
            r.setting.as_tuple() for r in b.trial_log[:8]
        ]

    def test_crash_only_oc_reports_not_ok(self):
        # TB without ST cannot run on 3-D order-4 stencils.
        result = tune(
            box(3, 4), oc=OC.parse("TB"), gpu="V100", strategy="random",
            budget=6, seed=0,
        )
        assert not result.ok
        assert result.best_setting is None
        assert result.crashed == result.trials > 0
        assert "crashed" in result.describe()


class TestBackendIndependence:
    """trials and the draw sequence never depend on the substrate."""

    KINDS = ("scalar", "vector", "cached")

    @pytest.mark.parametrize("name", ("random", "genetic", "halving"))
    def test_same_decisions_on_every_backend(self, name):
        results = [
            tune(
                STENCIL, oc=ST, backend=make_backend(kind, "A100"),
                strategy=name, budget=18, seed=4,
            )
            for kind in self.KINDS
        ]
        ref = results[0]
        for other in results[1:]:
            assert other.best_setting == ref.best_setting
            assert other.trials == ref.trials
            assert other.cost == ref.cost
            # Scalar vs vector times agree to 1e-9 relative (the engine
            # contract); vector vs cached are bit-identical.
            assert other.best_time_ms == pytest.approx(
                ref.best_time_ms, rel=1e-9
            )
        assert results[1].best_time_ms == results[2].best_time_ms


class TestBudgetAccounting:
    def test_budget_is_a_hard_cap_between_frontiers(self):
        result = tune(
            STENCIL, oc=ST, gpu="V100", strategy="annealing", budget=20,
            seed=1, chains=2, steps=50,
        )
        # 50 steps of 2 chains would cost 102; the driver stops at the
        # first frontier boundary at/after the budget.
        assert 20 <= result.cost <= 22

    def test_halving_charges_fidelity_fractions(self):
        result = tune(
            STENCIL, oc=ST, gpu="V100", strategy="halving", budget=20, seed=3
        )
        # Reduced-grid rungs cost their grid-cell fraction, so the
        # strategy observes far more trials than the budget.
        assert result.trials > result.cost * 2
        assert result.cost <= 22
        assert any(r.fidelity < 1.0 for r in result.trial_log)
        assert result.extras["rungs"] == 3

    def test_halving_best_comes_from_full_fidelity(self):
        result = tune(
            STENCIL, oc=ST, gpu="2080Ti", strategy="halving", budget=16, seed=8
        )
        sim = GPUSimulator("2080Ti")
        assert sim.time(STENCIL, ST, result.best_setting) == pytest.approx(
            result.best_time_ms
        )

    def test_invalid_budget(self):
        with pytest.raises(TuningError, match="budget"):
            tune(STENCIL, oc=ST, gpu="V100", budget=0)


class TestFrontDoorValidation:
    def test_stencil_needs_oc(self):
        with pytest.raises(TuningError, match="oc="):
            tune(STENCIL, gpu="V100")

    def test_space_needs_stencil(self):
        space = ParameterSpace.for_oc(ST, ndim=2)
        with pytest.raises(TuningError, match="stencil="):
            tune(space, oc=ST, gpu="V100")

    def test_space_with_stencil_works(self):
        space = ParameterSpace.for_oc(
            ST, ndim=2, restrictions=["block_x <= 64"]
        )
        result = tune(
            space, stencil=STENCIL, oc=ST, gpu="V100", budget=6, seed=0
        )
        assert result.ok
        assert all(r.setting["block_x"] <= 64 for r in result.trial_log)

    def test_restrictions_flow_from_tune(self):
        result = tune(
            STENCIL, oc=ST, gpu="V100", budget=6, seed=0,
            restrictions=("block_x <= 32",),
        )
        assert result.ok
        assert all(r.setting["block_x"] <= 32 for r in result.trial_log)

    def test_restrictions_rejected_with_explicit_space(self):
        space = ParameterSpace.for_oc(ST, ndim=2)
        with pytest.raises(TuningError, match="ParameterSpace constructor"):
            tune(
                space, stencil=STENCIL, oc=ST, gpu="V100",
                restrictions=("block_x <= 32",),
            )

    def test_needs_backend_or_gpu(self):
        with pytest.raises(TuningError, match="backend= or gpu="):
            tune(STENCIL, oc=ST)

    def test_options_require_strategy_name(self):
        with pytest.raises(TuningError, match="strategy \\*name\\*"):
            tune(
                STENCIL, oc=ST, gpu="V100",
                strategy=GeneticStrategy(), population=8,
            )

    def test_wrong_space_type(self):
        with pytest.raises(TuningError, match="Stencil or ParameterSpace"):
            tune({"block_x": (32,)}, oc=ST, gpu="V100")


class TestGAResultCompat:
    def test_alias_and_properties(self):
        from repro.tuning import GAResult

        assert GAResult is TuneResult
        result = tune(
            STENCIL, oc=ST, gpu="V100", strategy="genetic", seed=0,
            population=8, generations=2,
        )
        assert result.evaluations == result.trials
        assert result.generations == 2
        assert result.extras["generations"] == 2
