"""Regenerate the pre-refactor golden tuning results.

The equivalence suite (``test_equivalence.py``) pins the unified
``repro.tuning.tune()`` front door to the behavior of the three legacy
search paths -- ``RandomSearch`` (with and without coordinate-descent
refinement), ``GeneticSearch`` and whole profiling campaigns -- as they
stood *before* the refactor.  This script produced
``golden_pre_refactor.json`` by running the pre-refactor code on the
4-GPU slice; it is kept so the fixture can be regenerated from any
commit known to reproduce the legacy behavior::

    PYTHONPATH=src python tests/tuning/make_golden.py

Every float is stored via ``repr`` (exact round trip through JSON) and
measurement lists are collapsed to a BLAKE2b digest over their full
content, so a comparison failure means a real bit-level divergence.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.gpu.specs import GPU_ORDER
from repro.gpu import GPUSimulator
from repro.optimizations import OC
from repro.profiling import RandomSearch, run_campaign
from repro.profiling.storage import campaign_to_dict
from repro.stencil import generate_population, get
from repro.tuning import GeneticSearch

#: The slice: named stencils x OCs exercising every parameter family.
STENCILS = ("star2d2r", "box2d1r", "star3d1r", "box3d2r")
OCS = ("naive", "ST", "ST_RT", "BM", "ST_CM_RT_TB", "ST_TB")

N_SETTINGS = 6
SEED = 7


def _digest_measurements(measurements) -> str:
    h = hashlib.blake2b(digest_size=16)
    for m in measurements:
        h.update(
            repr(
                (m.stencil_id, m.oc, m.setting.as_tuple(), m.gpu, m.time_ms)
            ).encode()
        )
    return h.hexdigest()


def _oc_result_row(result, measurements) -> dict:
    if result is None:
        return {"crashed_out": True}
    return {
        "crashed_out": False,
        "best_setting": list(result.best_setting.as_tuple()),
        "best_time_ms": repr(result.best_time_ms),
        "n_settings": result.n_settings,
        "crashed": result.crashed,
        "measurements": _digest_measurements(measurements),
    }


def main() -> None:
    golden: dict = {
        "n_settings": N_SETTINGS,
        "seed": SEED,
        "stencils": list(STENCILS),
        "ocs": list(OCS),
        "random": {},
        "random_unrefined": {},
        "genetic": {},
    }
    for gpu in GPU_ORDER:
        sim = GPUSimulator(gpu)
        refined = RandomSearch(sim, N_SETTINGS, seed=SEED)
        raw = RandomSearch(sim, N_SETTINGS, seed=SEED, refine=False)
        ga = GeneticSearch(sim, population=8, generations=4, seed=SEED)
        for name in STENCILS:
            stencil = get(name)
            sid = STENCILS.index(name)
            for oc_name in OCS:
                oc = OC.parse(oc_name)
                key = f"{gpu}/{name}/{oc_name}"
                r, ms = refined.tune_oc(stencil, sid, oc)
                golden["random"][key] = _oc_result_row(r, ms)
                r, ms = raw.tune_oc(stencil, sid, oc)
                golden["random_unrefined"][key] = _oc_result_row(r, ms)
                g = ga.tune_oc(stencil, oc)
                if g is None:
                    golden["genetic"][key] = {"crashed_out": True}
                else:
                    golden["genetic"][key] = {
                        "crashed_out": False,
                        "best_setting": list(g.best_setting.as_tuple()),
                        "best_time_ms": repr(g.best_time_ms),
                        "evaluations": g.evaluations,
                    }

    # Whole-campaign digest: random 2-D population on all four GPUs.
    pop = generate_population(2, 4, seed=SEED)
    campaign = run_campaign(pop, gpus=GPU_ORDER, n_settings=4, seed=SEED)
    doc = json.dumps(campaign_to_dict(campaign), sort_keys=True)
    golden["campaign_digest"] = hashlib.blake2b(
        doc.encode(), digest_size=16
    ).hexdigest()

    out = Path(__file__).with_name("golden_pre_refactor.json")
    out.write_text(json.dumps(golden, indent=1, sort_keys=True))
    print(f"wrote {out} ({len(golden['random'])} random slots)")


if __name__ == "__main__":
    main()
