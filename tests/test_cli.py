"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "--ndim", "2", "--count", "3"])
        assert args.command == "generate" and args.ndim == 2

    def test_unknown_gpu_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["select", "--campaign", "x", "--stencil", "s", "--gpu", "H100"]
            )


class TestCommands:
    def test_generate(self, capsys):
        assert main(["generate", "--ndim", "2", "--count", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("rand2d-") == 4
        assert "order=" in out

    def test_profile_select_predict_round_trip(self, tmp_path, capsys):
        campaign = tmp_path / "c.json"
        rc = main(
            [
                "profile", "--ndim", "2", "--count", "6", "--gpus", "V100",
                "--n-settings", "3", "-o", str(campaign), "--seed", "2",
            ]
        )
        assert rc == 0
        assert campaign.exists()

        rc = main(
            [
                "select", "--campaign", str(campaign), "--stencil", "star2d1r",
                "--gpu", "V100", "--seed", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted best OC" in out and "ms/step" in out

        rc = main(
            [
                "predict", "--campaign", str(campaign), "--stencil", "star2d1r",
                "--oc", "ST_RT", "--gpu", "V100", "--seed", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted" in out and "simulated" in out

    def test_predict_unknown_oc(self, tmp_path, capsys):
        campaign = tmp_path / "c.json"
        main(
            [
                "profile", "--ndim", "2", "--count", "4", "--gpus", "V100",
                "--n-settings", "3", "-o", str(campaign), "--seed", "3",
            ]
        )
        capsys.readouterr()
        rc = main(
            [
                "predict", "--campaign", str(campaign), "--stencil", "star2d1r",
                "--oc", "WARP", "--gpu", "V100",
            ]
        )
        assert rc == 2
