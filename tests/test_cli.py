"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "--ndim", "2", "--count", "3"])
        assert args.command == "generate" and args.ndim == 2

    def test_unknown_gpu_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["select", "--campaign", "x", "--stencil", "s", "--gpu", "H100"]
            )


class TestCommands:
    def test_generate(self, capsys):
        assert main(["generate", "--ndim", "2", "--count", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("rand2d-") == 4
        assert "order=" in out

    def test_profile_select_predict_round_trip(self, tmp_path, capsys):
        campaign = tmp_path / "c.json"
        rc = main(
            [
                "profile", "--ndim", "2", "--count", "6", "--gpus", "V100",
                "--n-settings", "3", "-o", str(campaign), "--seed", "2",
            ]
        )
        assert rc == 0
        assert campaign.exists()

        rc = main(
            [
                "select", "--campaign", str(campaign), "--stencil", "star2d1r",
                "--gpu", "V100", "--seed", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted best OC" in out and "ms/step" in out

        rc = main(
            [
                "predict", "--campaign", str(campaign), "--stencil", "star2d1r",
                "--oc", "ST_RT", "--gpu", "V100", "--seed", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted" in out and "simulated" in out

    def test_profile_with_workers_matches_sequential(self, tmp_path, capsys):
        seq, par = tmp_path / "seq.json", tmp_path / "par.json"
        args = [
            "profile", "--ndim", "2", "--count", "4", "--gpus", "V100",
            "--n-settings", "2", "--seed", "4",
        ]
        assert main(args + ["-o", str(seq)]) == 0
        assert main(args + ["-o", str(par), "--workers", "2"]) == 0
        capsys.readouterr()
        import json

        a, b = json.loads(seq.read_text()), json.loads(par.read_text())
        assert a == b

    def test_evaluate_select(self, tmp_path, capsys):
        campaign = tmp_path / "c.json"
        main(
            [
                "profile", "--ndim", "2", "--count", "8", "--gpus", "V100",
                "--n-settings", "3", "-o", str(campaign), "--seed", "5",
            ]
        )
        capsys.readouterr()
        rc = main(
            [
                "evaluate", "--campaign", str(campaign), "--gpu", "V100",
                "--folds", "3", "--seed", "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "select/gbdt on V100" in out
        assert "mean accuracy:" in out

    def test_predict_unknown_oc(self, tmp_path, capsys):
        campaign = tmp_path / "c.json"
        main(
            [
                "profile", "--ndim", "2", "--count", "4", "--gpus", "V100",
                "--n-settings", "3", "-o", str(campaign), "--seed", "3",
            ]
        )
        capsys.readouterr()
        rc = main(
            [
                "predict", "--campaign", str(campaign), "--stencil", "star2d1r",
                "--oc", "WARP", "--gpu", "V100",
            ]
        )
        assert rc == 2


class TestCodegenCommand:
    def test_parser_accepts_overrides(self):
        args = build_parser().parse_args(
            ["codegen", "--stencil", "star2d1r", "--oc", "ST",
             "--set", "block_x=64", "--set", "stream_dim=2"]
        )
        assert args.overrides == ["block_x=64", "stream_dim=2"]

    def test_emits_source_to_stdout(self, capsys):
        rc = main(
            ["codegen", "--stencil", "star2d1r", "--oc", "ST_RT",
             "--set", "stream_dim=2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "__global__ void" in out
        assert "optimization combination: ST_RT" in out

    def test_writes_files_to_output_dir(self, tmp_path, capsys):
        rc = main(
            ["codegen", "--stencil", "star2d1r", "--oc", "naive",
             "-o", str(tmp_path)]
        )
        assert rc == 0
        path = tmp_path / "star2d1r__naive.cu"
        assert path.exists()
        assert "__global__ void" in path.read_text()
        assert str(path) in capsys.readouterr().out

    def test_sampled_setting(self, capsys):
        rc = main(
            ["codegen", "--stencil", "star2d2r", "--oc", "ST", "--sample"]
        )
        assert rc == 0
        assert "__global__ void" in capsys.readouterr().out

    def test_unknown_oc(self, capsys):
        rc = main(["codegen", "--stencil", "star2d1r", "--oc", "WARP"])
        assert rc == 2
        assert "unknown OC" in capsys.readouterr().err

    def test_bad_override_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["codegen", "--stencil", "star2d1r", "--set", "block_x"]
            )


class TestLintCommand:
    def test_clean_sweep_exits_zero(self, capsys):
        rc = main(
            ["lint", "--stencil", "star2d1r", "--oc", "naive", "--oc", "ST"]
        )
        assert rc == 0
        assert "kernels linted: 0 error(s)" in capsys.readouterr().out

    def test_json_format(self, capsys):
        import json

        rc = main(
            ["lint", "--stencil", "star2d1r", "--oc", "naive",
             "--format", "json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["kernels"] >= 1

    def test_rules_catalog(self, capsys):
        rc = main(["lint", "--rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for rule in ("RACE001", "BOUNDS002", "RES001", "OCST001", "PERF001"):
            assert rule in out

    def test_unknown_oc(self, capsys):
        rc = main(["lint", "--oc", "WARP"])
        assert rc == 2
        assert "unknown OC" in capsys.readouterr().err

    def test_model_drift_fails_then_baseline_accepts(
        self, tmp_path, capsys, monkeypatch
    ):
        import dataclasses

        from repro.optimizations import kernelmodel

        real = kernelmodel.build_profile

        def perturbed(stencil, oc, setting, grid=None):
            p = real(stencil, oc, setting, grid)
            return dataclasses.replace(p, smem_per_block=p.smem_per_block + 64)

        monkeypatch.setattr(kernelmodel, "build_profile", perturbed)
        argv = ["lint", "--stencil", "star3d1r", "--oc", "ST"]
        rc = main(argv)
        assert rc == 1
        assert "RES001" in capsys.readouterr().out

        baseline = tmp_path / "baseline.json"
        rc = main(argv + ["--write-baseline", str(baseline)])
        assert rc == 0 and baseline.exists()
        capsys.readouterr()

        rc = main(argv + ["--baseline", str(baseline)])
        assert rc == 0
