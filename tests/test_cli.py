"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "--ndim", "2", "--count", "3"])
        assert args.command == "generate" and args.ndim == 2

    def test_unknown_gpu_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["select", "--campaign", "x", "--stencil", "s", "--gpu", "H100"]
            )


class TestCommands:
    def test_generate(self, capsys):
        assert main(["generate", "--ndim", "2", "--count", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert out.count("rand2d-") == 4
        assert "order=" in out

    def test_profile_select_predict_round_trip(self, tmp_path, capsys):
        campaign = tmp_path / "c.json"
        rc = main(
            [
                "profile", "--ndim", "2", "--count", "6", "--gpus", "V100",
                "--n-settings", "3", "-o", str(campaign), "--seed", "2",
            ]
        )
        assert rc == 0
        assert campaign.exists()

        rc = main(
            [
                "select", "--campaign", str(campaign), "--stencil", "star2d1r",
                "--gpu", "V100", "--seed", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted best OC" in out and "ms/step" in out

        rc = main(
            [
                "predict", "--campaign", str(campaign), "--stencil", "star2d1r",
                "--oc", "ST_RT", "--gpu", "V100", "--seed", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted" in out and "simulated" in out

    def test_profile_with_workers_matches_sequential(self, tmp_path, capsys):
        seq, par = tmp_path / "seq.json", tmp_path / "par.json"
        args = [
            "profile", "--ndim", "2", "--count", "4", "--gpus", "V100",
            "--n-settings", "2", "--seed", "4",
        ]
        assert main(args + ["-o", str(seq)]) == 0
        assert main(args + ["-o", str(par), "--workers", "2"]) == 0
        capsys.readouterr()
        import json

        a, b = json.loads(seq.read_text()), json.loads(par.read_text())
        assert a == b

    def test_evaluate_select(self, tmp_path, capsys):
        campaign = tmp_path / "c.json"
        main(
            [
                "profile", "--ndim", "2", "--count", "8", "--gpus", "V100",
                "--n-settings", "3", "-o", str(campaign), "--seed", "5",
            ]
        )
        capsys.readouterr()
        rc = main(
            [
                "evaluate", "--campaign", str(campaign), "--gpu", "V100",
                "--folds", "3", "--seed", "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "select/gbdt on V100" in out
        assert "mean accuracy:" in out

    def test_predict_unknown_oc(self, tmp_path, capsys):
        campaign = tmp_path / "c.json"
        main(
            [
                "profile", "--ndim", "2", "--count", "4", "--gpus", "V100",
                "--n-settings", "3", "-o", str(campaign), "--seed", "3",
            ]
        )
        capsys.readouterr()
        rc = main(
            [
                "predict", "--campaign", str(campaign), "--stencil", "star2d1r",
                "--oc", "WARP", "--gpu", "V100",
            ]
        )
        assert rc == 2


class TestServeCommands:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("serve_cli") / "c.json"
        rc = main(
            [
                "profile", "--ndim", "2", "--count", "6", "--gpus", "V100",
                "A100", "--n-settings", "3", "--backend", "cached",
                "-o", str(path), "--seed", "9",
            ]
        )
        assert rc == 0
        return path

    def test_train_out_and_registry(self, campaign, tmp_path, capsys):
        out = tmp_path / "sel.json"
        reg = tmp_path / "reg"
        rc = main(
            [
                "train", "--campaign", str(campaign), "--task", "select",
                "--gpu", "V100", "--out", str(out), "--registry", str(reg),
                "--seed", "9",
            ]
        )
        assert rc == 0
        stdout = capsys.readouterr().out
        assert out.exists()
        assert "published select-gbdt-V100-2d@v000001" in stdout
        assert (reg / "select-gbdt-V100-2d" / "v000001.json").exists()
        assert (reg / "select-gbdt-V100-2d" / "LATEST").read_text().strip() == (
            "v000001"
        )

    def test_train_select_needs_gpu(self, campaign, capsys):
        rc = main(
            ["train", "--campaign", str(campaign), "--task", "select",
             "--out", "x.json"]
        )
        assert rc == 2
        assert "requires --gpu" in capsys.readouterr().err

    def test_train_needs_destination(self, campaign, capsys):
        rc = main(["train", "--campaign", str(campaign), "--gpu", "V100"])
        assert rc == 2
        assert "--out and/or --registry" in capsys.readouterr().err

    def test_select_with_model_matches_retrain(self, campaign, tmp_path, capsys):
        """--model must reproduce what retraining on the campaign says
        (same model, so same selection), without fitting anything."""
        out = tmp_path / "sel.json"
        assert main(
            ["train", "--campaign", str(campaign), "--task", "select",
             "--gpu", "V100", "--out", str(out), "--seed", "9"]
        ) == 0
        capsys.readouterr()
        base = [
            "select", "--campaign", str(campaign), "--stencil", "star2d1r",
            "--gpu", "V100", "--seed", "9",
        ]
        assert main(base) == 0
        retrained = capsys.readouterr().out
        assert main(base + ["--model", str(out)]) == 0
        from_artifact = capsys.readouterr().out
        assert retrained == from_artifact

    def test_select_with_model_needs_no_campaign(
        self, campaign, tmp_path, capsys
    ):
        """An artifact carries ndim/max_order/representatives, so select
        runs without any campaign; the prediction matches the
        campaign-backed run (the tuning budget may differ: the campaign's
        n_settings vs the framework default)."""
        out = tmp_path / "sel.json"
        assert main(
            ["train", "--campaign", str(campaign), "--task", "select",
             "--gpu", "V100", "--out", str(out), "--seed", "9"]
        ) == 0
        capsys.readouterr()
        tail = ["--stencil", "star2d1r", "--gpu", "V100", "--seed", "9",
                "--model", str(out)]
        assert main(["select", "--campaign", str(campaign)] + tail) == 0
        with_campaign = capsys.readouterr().out
        assert main(["select"] + tail) == 0
        campaign_free = capsys.readouterr().out
        assert campaign_free.splitlines()[0] == with_campaign.splitlines()[0]
        assert "predicted best OC" in campaign_free

    def test_select_needs_campaign_or_model(self, capsys):
        rc = main(["select", "--stencil", "star2d1r", "--gpu", "V100"])
        assert rc == 2
        assert "--campaign and/or --model" in capsys.readouterr().err

    def test_select_model_gpu_mismatch(self, campaign, tmp_path, capsys):
        out = tmp_path / "sel.json"
        main(
            ["train", "--campaign", str(campaign), "--task", "select",
             "--gpu", "V100", "--out", str(out), "--seed", "9"]
        )
        capsys.readouterr()
        rc = main(
            ["select", "--campaign", str(campaign), "--stencil", "star2d1r",
             "--gpu", "A100", "--model", str(out), "--seed", "9"]
        )
        assert rc == 2
        assert "trained for 2d/V100" in capsys.readouterr().err

    def test_select_model_wrong_kind(self, campaign, tmp_path, capsys):
        out = tmp_path / "pred.json"
        main(
            ["train", "--campaign", str(campaign), "--task", "predict",
             "--out", str(out), "--seed", "9"]
        )
        capsys.readouterr()
        rc = main(
            ["select", "--campaign", str(campaign), "--stencil", "star2d1r",
             "--gpu", "V100", "--model", str(out), "--seed", "9"]
        )
        assert rc == 2
        assert "is a predictor, expected a selector" in capsys.readouterr().err

    def test_predict_with_model_needs_no_campaign(
        self, campaign, tmp_path, capsys
    ):
        out = tmp_path / "pred.json"
        main(
            ["train", "--campaign", str(campaign), "--task", "predict",
             "--out", str(out), "--seed", "9"]
        )
        capsys.readouterr()
        rc = main(
            ["predict", "--stencil", "star2d1r", "--oc", "ST_RT",
             "--gpu", "A100", "--model", str(out), "--seed", "9"]
        )
        assert rc == 0
        assert "predicted" in capsys.readouterr().out

    def test_predict_needs_campaign_or_model(self, capsys):
        rc = main(
            ["predict", "--stencil", "star2d1r", "--oc", "ST", "--gpu", "V100"]
        )
        assert rc == 2
        assert "--campaign and/or --model" in capsys.readouterr().err

    def test_corrupt_model_rejected(self, campaign, tmp_path, capsys):
        out = tmp_path / "sel.json"
        main(
            ["train", "--campaign", str(campaign), "--task", "select",
             "--gpu", "V100", "--out", str(out), "--seed", "9"]
        )
        out.write_text(out.read_text()[:-30])
        capsys.readouterr()
        rc = main(
            ["select", "--campaign", str(campaign), "--stencil", "star2d1r",
             "--gpu", "V100", "--model", str(out), "--seed", "9"]
        )
        assert rc == 2
        assert "cannot use --model" in capsys.readouterr().err

    def test_query_against_live_server(self, campaign, tmp_path, capsys):
        import threading

        from repro.serve import ModelRegistry, PredictionService
        from repro.serve.http import make_server

        reg = tmp_path / "reg"
        main(
            ["train", "--campaign", str(campaign), "--task", "select",
             "--gpu", "V100", "--registry", str(reg), "--seed", "9"]
        )
        main(
            ["train", "--campaign", str(campaign), "--task", "predict",
             "--registry", str(reg), "--seed", "9"]
        )
        capsys.readouterr()
        service = PredictionService(registry=ModelRegistry(reg))
        server = make_server(service)
        host, port = server.server_address[:2]
        threading.Thread(target=server.serve_forever, daemon=True).start()
        url = f"http://{host}:{port}"
        try:
            rc = main(
                ["query", "--url", url, "--stencil", "star2d1r",
                 "--gpu", "V100"]
            )
            assert rc == 0
            assert "best OC for star2d1r" in capsys.readouterr().out

            rc = main(
                ["query", "--url", url, "--stencil", "star2d1r",
                 "--gpu", "A100", "--oc", "ST", "--set", "block_x=64"]
            )
            assert rc == 0
            assert "ms/step (predicted)" in capsys.readouterr().out

            rc = main(["query", "--url", url, "--stats"])
            assert rc == 0
            import json

            stats = json.loads(capsys.readouterr().out)
            assert stats["requests"]["select"] == 1
        finally:
            server.shutdown()
            server.server_close()

    def test_query_needs_target(self, capsys):
        rc = main(["query", "--url", "http://127.0.0.1:1"])
        assert rc == 2
        assert "--stats" in capsys.readouterr().err

    def test_query_unreachable_server(self, capsys):
        rc = main(
            ["query", "--url", "http://127.0.0.1:9", "--stencil",
             "star2d1r", "--gpu", "V100"]
        )
        assert rc == 1
        assert "query failed" in capsys.readouterr().err


class TestEvaluateParity:
    def test_evaluate_without_campaign_profiles_on_the_fly(self, capsys):
        rc = main(
            [
                "evaluate", "--task", "select", "--gpu", "V100", "--ndim",
                "2", "--count", "6", "--n-settings", "3", "--backend",
                "cached", "--folds", "2", "--seed", "6",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "select/gbdt on V100" in out and "mean accuracy" in out

    def test_evaluate_backend_invariance(self, capsys):
        """Backend choice shapes speed, never scores: the cached and
        scalar paths must report identical fold accuracies."""
        argv = [
            "evaluate", "--task", "select", "--gpu", "V100", "--ndim", "2",
            "--count", "6", "--n-settings", "3", "--folds", "2",
            "--seed", "6",
        ]
        assert main(argv + ["--backend", "scalar"]) == 0
        scalar = capsys.readouterr().out
        assert main(argv + ["--backend", "cached"]) == 0
        cached = capsys.readouterr().out
        assert scalar == cached

    def test_evaluate_without_campaign_needs_ndim(self, capsys):
        rc = main(["evaluate", "--gpu", "V100"])
        assert rc == 2
        assert "--ndim is required" in capsys.readouterr().err

    def test_parser_accepts_parity_flags(self):
        args = build_parser().parse_args(
            ["evaluate", "--gpu", "V100", "--ndim", "2", "--backend",
             "parallel", "--workers", "2", "--chunk-size", "3"]
        )
        assert args.backend == "parallel"
        assert args.chunk_size == 3


class TestCodegenCommand:
    def test_parser_accepts_overrides(self):
        args = build_parser().parse_args(
            ["codegen", "--stencil", "star2d1r", "--oc", "ST",
             "--set", "block_x=64", "--set", "stream_dim=2"]
        )
        assert args.overrides == ["block_x=64", "stream_dim=2"]

    def test_emits_source_to_stdout(self, capsys):
        rc = main(
            ["codegen", "--stencil", "star2d1r", "--oc", "ST_RT",
             "--set", "stream_dim=2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "__global__ void" in out
        assert "optimization combination: ST_RT" in out

    def test_writes_files_to_output_dir(self, tmp_path, capsys):
        rc = main(
            ["codegen", "--stencil", "star2d1r", "--oc", "naive",
             "-o", str(tmp_path)]
        )
        assert rc == 0
        path = tmp_path / "star2d1r__naive.cu"
        assert path.exists()
        assert "__global__ void" in path.read_text()
        assert str(path) in capsys.readouterr().out

    def test_sampled_setting(self, capsys):
        rc = main(
            ["codegen", "--stencil", "star2d2r", "--oc", "ST", "--sample"]
        )
        assert rc == 0
        assert "__global__ void" in capsys.readouterr().out

    def test_unknown_oc(self, capsys):
        rc = main(["codegen", "--stencil", "star2d1r", "--oc", "WARP"])
        assert rc == 2
        assert "unknown OC" in capsys.readouterr().err

    def test_hip_dialect_flag(self, capsys):
        rc = main(
            ["codegen", "--stencil", "star2d1r", "--oc", "ST_RT",
             "--set", "stream_dim=2", "--dialect", "hip"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "// dialect: hip" in out
        assert "hipLaunchKernelGGL(" in out

    def test_amd_gpu_implies_hip(self, tmp_path, capsys):
        rc = main(
            ["codegen", "--stencil", "star2d1r", "--oc", "naive",
             "--gpu", "MI100", "-o", str(tmp_path)]
        )
        assert rc == 0
        path = tmp_path / "star2d1r__naive.hip.cpp"
        assert path.exists()
        assert "#include <hip/hip_runtime.h>" in path.read_text()

    def test_bad_override_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["codegen", "--stencil", "star2d1r", "--set", "block_x"]
            )


class TestLintCommand:
    def test_clean_sweep_exits_zero(self, capsys):
        rc = main(
            ["lint", "--stencil", "star2d1r", "--oc", "naive", "--oc", "ST"]
        )
        assert rc == 0
        assert "kernels linted: 0 error(s)" in capsys.readouterr().out

    def test_hip_sweep_on_amd_target(self, capsys):
        rc = main(
            ["lint", "--stencil", "star2d1r", "--oc", "naive", "--oc", "ST",
             "--gpu", "MI210"]
        )
        assert rc == 0
        assert "kernels linted: 0 error(s)" in capsys.readouterr().out

    def test_json_format(self, capsys):
        import json

        rc = main(
            ["lint", "--stencil", "star2d1r", "--oc", "naive",
             "--format", "json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["kernels"] >= 1

    def test_rules_catalog(self, capsys):
        rc = main(["lint", "--rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for rule in ("RACE001", "BOUNDS002", "RES001", "OCST001", "PERF001"):
            assert rule in out

    def test_unknown_oc(self, capsys):
        rc = main(["lint", "--oc", "WARP"])
        assert rc == 2
        assert "unknown OC" in capsys.readouterr().err

    def test_model_drift_fails_then_baseline_accepts(
        self, tmp_path, capsys, monkeypatch
    ):
        import dataclasses

        from repro.optimizations import kernelmodel

        real = kernelmodel.build_profile

        def perturbed(stencil, oc, setting, grid=None):
            p = real(stencil, oc, setting, grid)
            return dataclasses.replace(p, smem_per_block=p.smem_per_block + 64)

        monkeypatch.setattr(kernelmodel, "build_profile", perturbed)
        argv = ["lint", "--stencil", "star3d1r", "--oc", "ST"]
        rc = main(argv)
        assert rc == 1
        assert "RES001" in capsys.readouterr().out

        baseline = tmp_path / "baseline.json"
        rc = main(argv + ["--write-baseline", str(baseline)])
        assert rc == 0 and baseline.exists()
        capsys.readouterr()

        rc = main(argv + ["--baseline", str(baseline)])
        assert rc == 0

    def test_fail_on_never_masks_errors(self, capsys, monkeypatch):
        import dataclasses
        import json

        from repro.optimizations import kernelmodel

        real = kernelmodel.build_profile

        def perturbed(stencil, oc, setting, grid=None):
            p = real(stencil, oc, setting, grid)
            return dataclasses.replace(p, smem_per_block=p.smem_per_block + 64)

        monkeypatch.setattr(kernelmodel, "build_profile", perturbed)
        argv = ["lint", "--stencil", "star3d1r", "--oc", "ST"]
        assert main(argv + ["--fail-on", "never"]) == 0
        capsys.readouterr()

        rc = main(argv + ["--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["worst_severity"] == "error"
        assert payload["fail_on"] == "error"

    def test_fail_on_warning_gates_clean_sweep(self, capsys):
        # A clean sweep stays rc 0 even at the strictest threshold.
        rc = main(
            ["lint", "--stencil", "star2d1r", "--oc", "naive",
             "--fail-on", "info"]
        )
        assert rc == 0
        capsys.readouterr()


class TestEstimateCommand:
    def test_text_output(self, capsys):
        rc = main(
            ["estimate", "--stencil", "star2d1r", "--oc", "naive",
             "--oc", "ST", "--gpu", "V100"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "ms/step" in out
        assert "star2d1r x naive" in out

    def test_json_payload(self, capsys):
        import json

        rc = main(
            ["estimate", "--stencil", "box2d1r", "--oc", "ST_RT",
             "--gpu", "V100", "--gpu", "A100", "--format", "json",
             "--metrics"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"estimates", "skipped", "crashed"}
        rows = payload["estimates"]
        assert rows and all(r["time_ms"] > 0 for r in rows)
        assert {r["gpu"] for r in rows} == {"V100", "A100"}
        assert all("metrics" in r and "phases_ms" in r for r in rows)

    def test_unknown_oc(self, capsys):
        rc = main(["estimate", "--stencil", "star2d1r", "--oc", "WARP"])
        assert rc == 2
        assert "unknown OC" in capsys.readouterr().err


class TestServeShutdown:
    def test_sigterm_drains_and_exits_zero(self):
        """`repro serve` stops accepting on SIGTERM, drains, flushes
        final stats to stderr, and exits 0."""
        import json
        import os
        import signal
        import subprocess
        import sys
        import time
        import urllib.request
        from pathlib import Path

        import repro

        src = Path(repro.__file__).resolve().parents[1]
        env = {**os.environ, "PYTHONPATH": str(src)}
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--drain-timeout", "5"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env=env, text=True,
        )
        try:
            line = proc.stdout.readline()
            assert "serving on http://" in line, line
            url = line.split("serving on ", 1)[1].split(" ")[0].strip()
            with urllib.request.urlopen(f"{url}/healthz", timeout=10) as r:
                assert json.loads(r.read())["ok"] is True
            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
            stderr = proc.stderr.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
        assert rc == 0
        assert "shutting down" in stderr and "draining" in stderr
        # The last stderr line is the final stats snapshot.
        stats = json.loads(stderr.strip().splitlines()[-1])
        assert stats["requests"] == {}  # healthz is not a counted endpoint
        assert "admission" in stats

    def test_parser_accepts_robustness_flags(self):
        args = build_parser().parse_args(
            ["serve", "--max-queue", "32", "--budget-ms", "50",
             "--reload-interval", "2", "--drain-timeout", "1.5"]
        )
        assert args.max_queue == 32
        assert args.budget_ms == 50.0
        assert args.reload_interval == 2.0
        assert args.drain_timeout == 1.5

    def test_serve_chaos_in_parser(self):
        args = build_parser().parse_args(["serve-chaos", "--quick"])
        assert args.command == "serve-chaos" and args.quick is True
