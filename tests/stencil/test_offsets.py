"""Unit tests for offset arithmetic."""

import pytest

from repro.stencil import offsets as off


class TestDistances:
    def test_chebyshev_axis(self):
        assert off.chebyshev((3, 0)) == 3

    def test_chebyshev_diagonal(self):
        assert off.chebyshev((2, -2, 1)) == 2

    def test_manhattan(self):
        assert off.manhattan((2, -2, 1)) == 5

    def test_euclidean_sq(self):
        assert off.euclidean_sq((3, -4)) == 25

    def test_order_is_chebyshev(self):
        assert off.order_of((1, -4)) == 4


class TestMooreNeighbors:
    def test_count_2d(self):
        assert len(off.moore_neighbors((0, 0))) == 8

    def test_count_3d(self):
        assert len(off.moore_neighbors((0, 0, 0))) == 26

    def test_excludes_self(self):
        assert (5, 5) not in off.moore_neighbors((5, 5))

    def test_offset_center(self):
        nb = off.moore_neighbors((2, 3))
        assert (1, 2) in nb and (3, 4) in nb

    def test_neighbors_of_set_excludes_members(self):
        pts = {(0, 0), (1, 0)}
        nb = off.neighbors_of_set(pts)
        assert not nb & pts
        assert (2, 0) in nb


class TestShells:
    def test_shell_zero(self):
        assert off.shell(2, 0) == [(0, 0)]

    def test_shell_one_2d(self):
        assert len(off.shell(2, 1)) == 8

    def test_shell_size_formula_matches_enumeration(self):
        for ndim in (2, 3):
            for order in range(0, 5):
                assert off.shell_size(ndim, order) == len(off.shell(ndim, order))

    def test_shell_negative_order_raises(self):
        with pytest.raises(ValueError):
            off.shell(2, -1)
        with pytest.raises(ValueError):
            off.shell_size(2, -1)

    def test_ball_union_of_shells(self):
        b = set(off.ball(2, 2))
        shells = set()
        for k in range(3):
            shells.update(off.shell(2, k))
        assert b == shells

    def test_shell_sorted_deterministic(self):
        assert off.shell(2, 1) == sorted(off.shell(2, 1))


class TestAxisDiagonal:
    def test_on_axis(self):
        assert off.on_axis((0, 3))
        assert off.on_axis((0, 0))
        assert not off.on_axis((1, 1))

    def test_full_diagonal(self):
        assert off.is_full_diagonal((2, -2))
        assert not off.is_full_diagonal((2, 0))
        assert not off.is_full_diagonal((2, 1))


class TestValidate:
    def test_validate_casts(self):
        assert off.validate_offset([1.0, -2.0], 2) == (1, -2)

    def test_validate_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            off.validate_offset((1, 2, 3), 2)
