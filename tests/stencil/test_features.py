"""Tests for Table II feature extraction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stencil import (
    batch_features,
    box,
    describe,
    extract_features,
    feature_names,
    generate_stencil,
    n_features,
    star,
)
from repro.stencil.offsets import shell_size


class TestVectorLayout:
    def test_length(self):
        assert n_features(4) == 11
        assert len(feature_names(4)) == 11

    def test_names_order(self):
        names = feature_names(2)
        assert names == [
            "order",
            "nnz",
            "sparsity",
            "nnz_order_1",
            "nnz_order_2",
            "nnzRatio_order_1",
            "nnzRatio_order_2",
        ]

    def test_vector_matches_names(self):
        v = extract_features(star(2, 1))
        assert v.shape == (n_features(),)


class TestValues:
    def test_star2d1r(self):
        d = describe(star(2, 1))
        assert d["order"] == 1
        assert d["nnz"] == 5
        assert np.isclose(d["sparsity"], 5 / 81)
        assert d["nnz_order_1"] == 4
        assert np.isclose(d["nnzRatio_order_1"], 4 / 8)
        assert d["nnz_order_2"] == 0

    def test_full_box_ratios_are_one(self):
        d = describe(box(2, 4))
        for n in range(1, 5):
            assert np.isclose(d[f"nnzRatio_order_{n}"], 1.0)

    def test_3d_sparsity_denominator(self):
        d = describe(star(3, 1))
        assert np.isclose(d["sparsity"], 7 / 9**3)


class TestInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        ndim=st.sampled_from([2, 3]),
        order=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    def test_shell_counts_sum_to_nnz(self, ndim, order, seed):
        rng = np.random.default_rng(seed)
        s = generate_stencil(ndim, order, rng)
        d = describe(s)
        shells = sum(d[f"nnz_order_{n}"] for n in range(1, 5))
        assert shells + 1 == d["nnz"]  # +1 for the central point

    @settings(max_examples=40, deadline=None)
    @given(
        ndim=st.sampled_from([2, 3]),
        order=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    def test_ratios_in_unit_interval(self, ndim, order, seed):
        rng = np.random.default_rng(seed)
        s = generate_stencil(ndim, order, rng)
        v = extract_features(s)
        ratios = v[3 + 4 :]
        assert np.all(ratios >= 0.0) and np.all(ratios <= 1.0)

    @settings(max_examples=20, deadline=None)
    @given(order=st.integers(1, 4))
    def test_ratio_consistent_with_count(self, order):
        s = star(2, order)
        d = describe(s)
        for n in range(1, order + 1):
            assert np.isclose(
                d[f"nnzRatio_order_{n}"],
                d[f"nnz_order_{n}"] / shell_size(2, n),
            )


class TestBatch:
    def test_batch_shape(self):
        m = batch_features([star(2, 1), box(2, 2), star(2, 3)])
        assert m.shape == (3, n_features())

    def test_batch_rows_match_single(self):
        ss = [star(2, 1), box(2, 2)]
        m = batch_features(ss)
        assert np.array_equal(m[0], extract_features(ss[0]))
        assert np.array_equal(m[1], extract_features(ss[1]))
