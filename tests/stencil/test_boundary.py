"""Tests for the boundary-condition extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StencilError
from repro.stencil import (
    Boundary,
    apply_with_boundary,
    boundary_feature,
    boundary_fraction,
    boundary_overhead_factor,
    generate_stencil,
    star,
)


class TestApplyWithBoundary:
    def test_none_matches_plain_apply(self):
        g = np.random.default_rng(0).random((12, 12))
        s = star(2, 1)
        assert np.array_equal(
            apply_with_boundary(s, g, Boundary.NONE), s.apply(g)
        )

    def test_periodic_constant_field_fixed_point(self):
        g = np.full((10, 10), 2.5)
        out = apply_with_boundary(star(2, 2), g, Boundary.PERIODIC)
        assert np.allclose(out, 2.5)

    def test_periodic_wraps(self):
        g = np.zeros((8, 8))
        g[0, 0] = 8.0
        s = star(2, 1)
        out = apply_with_boundary(s, g, Boundary.PERIODIC, coefficient=1.0)
        # The west neighbor of (0,0) is (0,7); its update sums g[0,0].
        assert out[0, 7] == 8.0
        assert out[7, 0] == 8.0

    def test_dirichlet_uses_ghost_value(self):
        g = np.ones((6, 6))
        s = star(2, 1)
        out = apply_with_boundary(
            s, g, Boundary.DIRICHLET, coefficient=1.0, dirichlet_value=0.0
        )
        # Corner point: two in-grid neighbors missing -> sum = 3 not 5.
        assert out[0, 0] == 3.0
        assert out[3, 3] == 5.0

    def test_reflect_constant_field(self):
        g = np.full((9, 9), 1.5)
        out = apply_with_boundary(star(2, 1), g, Boundary.REFLECT)
        assert np.allclose(out, 1.5)

    def test_reflect_too_small_raises(self):
        with pytest.raises(StencilError):
            apply_with_boundary(star(2, 4), np.ones((3, 3)), Boundary.REFLECT)

    def test_3d_supported(self):
        g = np.ones((6, 6, 6))
        out = apply_with_boundary(star(3, 1), g, Boundary.PERIODIC)
        assert np.allclose(out, 1.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_interior_matches_plain_apply(self, seed):
        rng = np.random.default_rng(seed)
        s = generate_stencil(2, 2, rng)
        g = rng.random((14, 14))
        r = s.order
        plain = s.apply(g)
        for bc in (Boundary.PERIODIC, Boundary.DIRICHLET, Boundary.REFLECT):
            out = apply_with_boundary(s, g, bc)
            assert np.allclose(out[r:-r, r:-r], plain[r:-r, r:-r])


class TestOverheadModel:
    def test_none_is_free(self):
        assert boundary_overhead_factor(star(2, 1), (8192, 8192), Boundary.NONE) == 1.0

    def test_fraction_small_for_big_grid(self):
        frac = boundary_fraction(star(2, 1), (8192, 8192))
        assert 0.0 < frac < 0.001

    def test_fraction_one_for_tiny_grid(self):
        assert boundary_fraction(star(2, 4), (8, 8)) == 1.0

    def test_periodic_costs_most(self):
        s = star(3, 4)
        dims = (64, 64, 64)  # large boundary share
        d = boundary_overhead_factor(s, dims, Boundary.DIRICHLET)
        r = boundary_overhead_factor(s, dims, Boundary.REFLECT)
        p = boundary_overhead_factor(s, dims, Boundary.PERIODIC)
        assert 1.0 < d < p
        assert d < r < p

    def test_simulator_integration(self):
        from repro.gpu import GPUSimulator
        from repro.optimizations import OC, default_setting

        sim = GPUSimulator("V100", sigma=0)
        s = star(3, 2)
        base = sim.run(s, OC.parse("naive"), default_setting(), grid=(64, 64, 64))
        bc = sim.run(
            s, OC.parse("naive"), default_setting(), grid=(64, 64, 64),
            boundary=Boundary.PERIODIC,
        )
        assert bc.time_ms > base.time_ms

    def test_feature_encoding(self):
        assert boundary_feature(Boundary.NONE) == 0.0
        codes = {boundary_feature(b) for b in Boundary}
        assert len(codes) == 4
