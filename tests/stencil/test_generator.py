"""Tests for the Algorithm 1 random stencil generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StencilError
from repro.stencil import (
    generate_population,
    generate_stencil,
    verify_neighbor_property,
)
from repro.stencil import box, star
from repro.stencil.stencil import Stencil


class TestGenerateStencil:
    @settings(max_examples=60, deadline=None)
    @given(
        ndim=st.sampled_from([2, 3]),
        order=st.integers(1, 4),
        seed=st.integers(0, 100_000),
    )
    def test_exact_order(self, ndim, order, seed):
        rng = np.random.default_rng(seed)
        s = generate_stencil(ndim, order, rng)
        assert s.order == order

    @settings(max_examples=60, deadline=None)
    @given(
        ndim=st.sampled_from([2, 3]),
        order=st.integers(1, 4),
        seed=st.integers(0, 100_000),
    )
    def test_neighbor_property_holds(self, ndim, order, seed):
        rng = np.random.default_rng(seed)
        s = generate_stencil(ndim, order, rng)
        assert verify_neighbor_property(s)

    def test_deterministic_for_seed(self):
        a = generate_stencil(2, 3, np.random.default_rng(7))
        b = generate_stencil(2, 3, np.random.default_rng(7))
        assert a.offsets == b.offsets

    def test_keep_prob_one_gives_connected_cone(self):
        # With keep_prob=1 every reachable candidate is taken each shell.
        s = generate_stencil(2, 2, np.random.default_rng(0), keep_prob=1.0)
        assert s.order == 2
        assert s.nnz > star(2, 2).nnz

    def test_rejects_bad_order(self):
        rng = np.random.default_rng(0)
        with pytest.raises(StencilError):
            generate_stencil(2, 0, rng)
        with pytest.raises(StencilError):
            generate_stencil(2, 5, rng)

    def test_rejects_bad_keep_prob(self):
        with pytest.raises(StencilError):
            generate_stencil(2, 1, np.random.default_rng(0), keep_prob=0.0)


class TestVerifyNeighborProperty:
    def test_star_satisfies(self):
        assert verify_neighbor_property(star(3, 4))

    def test_box_satisfies(self):
        assert verify_neighbor_property(box(2, 3))

    def test_detached_shell_fails(self):
        # Order-2 point with no order-1 support nearby.
        s = Stencil.from_points([(1, 0), (-2, -2)])
        assert not verify_neighbor_property(s)


class TestPopulation:
    def test_count_and_names(self):
        pop = generate_population(2, 30, seed=1)
        assert len(pop) == 30
        assert pop[0].name == "rand2d-0"

    def test_unique_patterns(self):
        pop = generate_population(3, 50, seed=2)
        keys = {s.cache_key() for s in pop}
        assert len(keys) == 50

    def test_deterministic(self):
        a = generate_population(2, 20, seed=3)
        b = generate_population(2, 20, seed=3)
        assert [s.offsets for s in a] == [s.offsets for s in b]

    def test_orders_cover_range(self):
        pop = generate_population(2, 80, seed=4)
        assert {s.order for s in pop} == {1, 2, 3, 4}

    def test_all_satisfy_neighbor_property(self):
        for s in generate_population(3, 40, seed=5):
            assert verify_neighbor_property(s)
