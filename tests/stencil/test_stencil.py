"""Unit tests for the Stencil class and reference apply semantics."""

import numpy as np
import pytest

from repro.errors import StencilError
from repro.stencil import Stencil, box, cross, star


class TestConstruction:
    def test_center_added_automatically(self):
        s = Stencil(ndim=2, offsets=frozenset({(1, 0)}))
        assert (0, 0) in s.offsets
        assert s.nnz == 2

    def test_rejects_bad_ndim(self):
        with pytest.raises(StencilError):
            Stencil(ndim=4, offsets=frozenset({(1, 0, 0, 0)}))

    def test_rejects_center_only(self):
        with pytest.raises(StencilError):
            Stencil(ndim=2, offsets=frozenset())

    def test_rejects_mismatched_offsets(self):
        with pytest.raises(ValueError):
            Stencil(ndim=2, offsets=frozenset({(1, 0, 0)}))

    def test_from_points_infers_ndim(self):
        s = Stencil.from_points([(1, 0, 0), (-1, 0, 0)])
        assert s.ndim == 3

    def test_equality_ignores_name(self):
        a = star(2, 1, name="a")
        b = star(2, 1, name="b")
        assert a == b

    def test_hashable(self):
        assert len({star(2, 1), star(2, 1), box(2, 1)}) == 2


class TestProperties:
    def test_star_order_and_nnz(self):
        s = star(2, 2)
        assert s.order == 2
        assert s.nnz == 9  # center + 2 per direction per axis

    def test_box_nnz(self):
        assert box(2, 1).nnz == 9
        assert box(3, 1).nnz == 27
        assert box(3, 4).nnz == 9**3

    def test_cross_nnz_2d(self):
        # star(2,1) has 5 points; diagonals add 4.
        assert cross(2, 1).nnz == 9
        assert cross(2, 2).nnz == 17

    def test_shell_counts_pad(self):
        s = star(2, 1)
        assert s.shell_counts(3) == [1, 4, 0, 0]

    def test_axis_extents_asymmetric(self):
        s = Stencil.from_points([(3, 0), (0, 1)])
        assert s.axis_extents == (3, 1)

    def test_footprint(self):
        s = star(2, 1)
        assert s.footprint_points == 9

    def test_symmetric(self):
        assert star(3, 2).is_symmetric
        assert not Stencil.from_points([(1, 0)]).is_symmetric

    def test_distances_sorted_with_offsets(self):
        s = star(2, 1)
        d = s.distances()
        assert d.shape == (5,)
        assert np.isclose(sorted(d)[0], 0.0)

    def test_flops(self):
        assert star(2, 1).flops_per_point() == 9

    def test_cache_key_distinguishes(self):
        assert star(2, 1).cache_key() != box(2, 1).cache_key()


class TestApply:
    def test_constant_field_fixed_point(self):
        g = np.full((16, 16), 3.0)
        out = star(2, 1).apply(g)
        assert np.allclose(out, 3.0)

    def test_boundary_untouched(self):
        rng = np.random.default_rng(0)
        g = rng.random((12, 12))
        out = star(2, 2).apply(g)
        assert np.array_equal(out[:2, :], g[:2, :])
        assert np.array_equal(out[:, -2:], g[:, -2:])

    def test_matches_naive_loop(self):
        rng = np.random.default_rng(1)
        g = rng.random((10, 10))
        s = cross(2, 1)
        out = s.apply(g, coefficient=0.5)
        i, j = 4, 5
        expected = 0.5 * sum(g[i + di, j + dj] for (di, dj) in s.offsets)
        assert np.isclose(out[i, j], expected)

    def test_3d_apply(self):
        g = np.ones((8, 8, 8))
        out = star(3, 1).apply(g)
        assert np.allclose(out, 1.0)

    def test_rejects_wrong_ndim_grid(self):
        with pytest.raises(StencilError):
            star(2, 1).apply(np.ones((4, 4, 4)))

    def test_rejects_tiny_grid(self):
        with pytest.raises(StencilError):
            star(2, 4).apply(np.ones((8, 8)))

    def test_input_not_mutated(self):
        g = np.arange(100, dtype=float).reshape(10, 10)
        snapshot = g.copy()
        star(2, 1).apply(g)
        assert np.array_equal(g, snapshot)
