"""Tests for shape constructors and classification."""

import pytest

from repro.stencil import Shape, box, classify, cross, star
from repro.stencil.offsets import chebyshev, on_axis
from repro.stencil.stencil import Stencil


class TestStar:
    def test_all_points_on_axes(self):
        s = star(3, 4)
        assert all(on_axis(p) for p in s.offsets)

    def test_nnz_formula(self):
        # center + 2 * ndim * order
        for ndim in (2, 3):
            for order in range(1, 5):
                assert star(ndim, order).nnz == 1 + 2 * ndim * order

    def test_order(self):
        assert star(2, 3).order == 3


class TestBox:
    def test_is_full_ball(self):
        s = box(2, 2)
        assert s.nnz == 25
        assert all(chebyshev(p) <= 2 for p in s.offsets)

    def test_order(self):
        assert box(3, 4).order == 4


class TestCross:
    def test_contains_star(self):
        assert star(2, 2).offsets <= cross(2, 2).offsets

    def test_contains_diagonals(self):
        s = cross(3, 2)
        assert (2, 2, 2) in s.offsets
        assert (-1, 1, -1) in s.offsets

    def test_nnz_formula_3d(self):
        # center + 2*3*order (star arms) + 8*order (diagonals)
        for order in range(1, 5):
            assert cross(3, order).nnz == 1 + 6 * order + 8 * order


class TestValidation:
    def test_rejects_order_zero(self):
        with pytest.raises(ValueError):
            star(2, 0)

    def test_rejects_bad_ndim(self):
        with pytest.raises(ValueError):
            box(1, 1)


class TestClassify:
    def test_star_classified(self):
        assert classify(star(2, 3)) == Shape.STAR

    def test_box_classified(self):
        assert classify(box(3, 1)) == Shape.BOX

    def test_cross_classified(self):
        assert classify(cross(2, 2)) == Shape.CROSS

    def test_order1_2d_box_equals_cross_resolved_consistently(self):
        # In 2-D at order 1 the box and cross patterns coincide (9 points);
        # classification must be deterministic.
        assert classify(box(2, 1)) == classify(cross(2, 1))

    def test_partial_star_still_star(self):
        s = Stencil.from_points([(1, 0), (-1, 0), (0, 1)])
        assert classify(s) == Shape.STAR

    def test_irregular(self):
        s = Stencil.from_points([(1, 0), (2, 1), (1, 1)])
        assert classify(s) == Shape.IRREGULAR
