"""Tests for the named benchmark stencil library."""

import pytest

from repro.stencil import LIBRARY, benchmark_stencils, get, names


class TestLibrary:
    def test_size(self):
        # 3 shapes x 2 dims x 4 orders
        assert len(LIBRARY) == 24

    def test_paper_named_stencils_present(self):
        for name in ("cross2d1r", "box3d3r", "box3d4r", "star2d1r"):
            assert name in LIBRARY

    def test_get_known(self):
        s = get("box3d3r")
        assert s.ndim == 3 and s.order == 3

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get("hex2d1r")

    def test_names_filter_by_ndim(self):
        n2 = names(2)
        assert len(n2) == 12
        assert all("2d" in n for n in n2)

    def test_names_ordering_shape_major(self):
        n2 = names(2)
        assert n2[0] == "star2d1r"
        assert n2[3] == "star2d4r"
        assert n2[4] == "box2d1r"

    def test_benchmark_stencils_match_names(self):
        ss = benchmark_stencils(3)
        assert [s.name for s in ss] == names(3)

    def test_every_entry_name_consistent(self):
        for name, s in LIBRARY.items():
            assert s.name == name
            assert f"{s.ndim}d" in name
            assert name.endswith(f"{s.order}r")
