"""Tests for binary tensor assignment (Fig. 6) including round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StencilError
from repro.stencil import (
    assign_tensor,
    batch_tensors,
    box,
    from_tensor,
    generate_stencil,
    star,
    tensor_shape,
)


class TestShapes:
    def test_2d_default(self):
        assert tensor_shape(2) == (9, 9)

    def test_3d_default(self):
        assert tensor_shape(3) == (9, 9, 9)

    def test_custom_order(self):
        assert tensor_shape(2, 2) == (5, 5)


class TestAssign:
    def test_center_always_one(self):
        t = assign_tensor(star(2, 1))
        assert t[4, 4] == 1.0

    def test_paper_example_star(self):
        t = assign_tensor(star(2, 1))
        assert t.sum() == 5
        assert t[3, 4] == t[5, 4] == t[4, 3] == t[4, 5] == 1.0

    def test_binary_values(self):
        t = assign_tensor(box(3, 2))
        assert set(np.unique(t)) <= {0.0, 1.0}

    def test_nnz_matches(self):
        s = box(2, 3)
        assert assign_tensor(s).sum() == s.nnz

    def test_order_too_large_raises(self):
        with pytest.raises(StencilError):
            assign_tensor(star(2, 3), max_order=2)

    def test_dtype(self):
        assert assign_tensor(star(2, 1)).dtype == np.float64


class TestRoundTrip:
    def test_star_round_trip(self):
        s = star(2, 4)
        assert from_tensor(assign_tensor(s)).offsets == s.offsets

    @settings(max_examples=30, deadline=None)
    @given(
        ndim=st.sampled_from([2, 3]),
        order=st.integers(1, 4),
        seed=st.integers(0, 10_000),
    )
    def test_random_round_trip(self, ndim, order, seed):
        rng = np.random.default_rng(seed)
        s = generate_stencil(ndim, order, rng)
        assert from_tensor(assign_tensor(s)).offsets == s.offsets

    def test_rejects_even_edge(self):
        with pytest.raises(StencilError):
            from_tensor(np.ones((8, 8)))

    def test_rejects_non_cube(self):
        with pytest.raises(StencilError):
            from_tensor(np.ones((9, 7)))

    def test_rejects_empty(self):
        with pytest.raises(StencilError):
            from_tensor(np.zeros((9, 9)))


class TestBatch:
    def test_stack_shape(self):
        b = batch_tensors([star(2, 1), box(2, 2)])
        assert b.shape == (2, 9, 9)

    def test_mixed_ndim_rejected(self):
        with pytest.raises(StencilError):
            batch_tensors([star(2, 1), star(3, 1)])

    def test_empty_rejected(self):
        with pytest.raises(StencilError):
            batch_tensors([])
